(* The observability layer: the hand-rolled JSON codec, the trace schema
   round-trip (in-memory events vs the JSONL export of the same run), the
   metrics registry and its cross-layer invariants, and profiling spans. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Rlfd_net
open Helpers
module Json = Rlfd_obs.Json
module Trace = Rlfd_obs.Trace
module Metrics = Rlfd_obs.Metrics
module Profile = Rlfd_obs.Profile
module Sketch = Rlfd_obs.Sketch

let event = Alcotest.testable Trace.pp ( = )

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

(* ---------- Json ---------- *)

let sample_json =
  Json.Obj
    [ ("a", Json.Int 3); ("b", Json.List [ Json.Bool true; Json.Null ]);
      ("c", Json.Obj [ ("nested", Json.Float 2.5) ]);
      ("s", Json.String "quote \" backslash \\ newline \n tab \t") ]

let json_tests =
  [
    test "to_string/of_string round-trips nesting and escapes" (fun () ->
        let reparsed = ok_exn (Json.of_string (Json.to_string sample_json)) in
        Alcotest.(check string) "fixpoint" (Json.to_string sample_json)
          (Json.to_string reparsed));
    test "of_string rejects trailing garbage and malformed input" (fun () ->
        List.iter
          (fun s ->
            match Json.of_string s with
            | Ok _ -> Alcotest.failf "accepted %S" s
            | Error _ -> ())
          [ "{\"a\":1} x"; "{"; "[1,]"; "nul"; "\"unterminated"; "" ]);
    test "accessors are total and shape-checked" (fun () ->
        let v = ok_exn (Json.of_string {|{"i":7,"f":1.5,"l":[1],"s":"x"}|}) in
        Alcotest.(check (option int)) "int" (Some 7)
          (Option.bind (Json.member "i" v) Json.to_int_opt);
        Alcotest.(check (option int)) "int of integral float" (Some 2)
          (Json.to_int_opt (Json.Float 2.0));
        Alcotest.(check (option int)) "no int from 1.5" None
          (Option.bind (Json.member "f" v) Json.to_int_opt);
        Alcotest.(check bool) "float accepts int" true
          (Option.bind (Json.member "i" v) Json.to_float_opt = Some 7.);
        Alcotest.(check (option string)) "missing member" None
          (Option.map Json.to_string (Json.member "zz" v));
        Alcotest.(check bool) "list" true
          (Option.bind (Json.member "l" v) Json.to_list_opt = Some [ Json.Int 1 ]));
    test "non-finite floats degrade to null" (fun () ->
        Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float nan));
        Alcotest.(check string) "inf" "null"
          (Json.to_string (Json.Float infinity)));
  ]

(* ---------- trace schema ---------- *)

let all_constructors =
  [ Trace.Step
      { time = 3; pid = 1; received_from = Some 2; sent_to = [ 2; 3 ];
        outputs = [ "42" ]; seen = Some "{p2}" };
    Trace.Step
      { time = 0; pid = 4; received_from = None; sent_to = []; outputs = [];
        seen = None };
    Trace.Idle { time = 9 };
    Trace.Send { time = 1; src = 1; dst = 2 };
    Trace.Deliver { time = 5; src = 1; dst = 2 };
    Trace.Drop { time = 5; src = 3; dst = 2 };
    Trace.Timer_set { time = 2; pid = 1; tag = 7; fires_at = 22 };
    Trace.Timer_fire { time = 22; pid = 1; tag = 7 };
    Trace.Suspect { time = 30; observer = 1; subject = 3; on = true };
    Trace.Suspect { time = 31; observer = 1; subject = 3; on = false };
    Trace.Output { time = 12; pid = 2; value = "decided 7" };
    Trace.Crash { time = 40; pid = 3 };
    Trace.Halt { time = 41; pid = 4 };
    Trace.Violation { time = 6; reason = "disagreement: 1 vs 2" };
    Trace.Note { time = 0; label = "hello \"world\"" };
    Trace.Progress
      { time = 1500; label = "explore"; done_ = 5000; total = Some 200_000;
        rate = 12_500.; detail = [ ("depth", 7.); ("load_factor", 0.43) ] };
    Trace.Progress
      { time = 10; label = "campaign"; done_ = 1; total = None; rate = 0.;
        detail = [] };
    Trace.Qos_snapshot
      { time = 900; label = "qos n=100"; suspected = 4; detected = 2;
        undetected = 1; false_episodes = 3; det_p50 = 41.; det_p95 = 52.5;
        det_p99 = 52.5; msgs = 123_456; bandwidth = 137.2 } ]

let trace_tests =
  [
    test "every constructor round-trips through JSON" (fun () ->
        List.iter
          (fun e ->
            let back = ok_exn (Trace.of_json (Trace.to_json e)) in
            Alcotest.check event (Trace.render e) e back)
          all_constructors);
    test "parse_line is the inverse of the JSONL rendering" (fun () ->
        List.iter
          (fun e ->
            let line = Json.to_string (Trace.to_json e) in
            Alcotest.check event line e (ok_exn (Trace.parse_line line)))
          all_constructors);
    test "of_json rejects unknown tags and missing fields" (fun () ->
        List.iter
          (fun s ->
            match Trace.of_json (ok_exn (Json.of_string s)) with
            | Ok _ -> Alcotest.failf "accepted %s" s
            | Error _ -> ())
          [ {|{"ev":"warp","t":1}|}; {|{"t":1}|}; {|{"ev":"send","t":1,"src":2}|} ]);
    test "tee reaches both sinks; null absorbs" (fun () ->
        let m1 = Trace.memory () and m2 = Trace.memory () in
        let s = Trace.tee m1 (Trace.tee Trace.null m2) in
        Alcotest.(check bool) "not null" false (Trace.is_null s);
        Trace.emit s (Trace.Idle { time = 1 });
        Alcotest.(check (list event)) "m1" [ Trace.Idle { time = 1 } ]
          (Trace.contents m1);
        Alcotest.(check (list event)) "m2" [ Trace.Idle { time = 1 } ]
          (Trace.contents m2);
        Alcotest.(check bool) "null tee collapses" true
          (Trace.is_null (Trace.tee Trace.null Trace.null)));
  ]

(* ---------- a real run: JSONL export vs in-memory events ---------- *)

let traced_run () =
  let n = 4 in
  let pattern = pattern ~n [ (2, 8) ] in
  (* [Buffer] here is the message buffer of [Rlfd_sim]; we want stdlib's. *)
  let buf = Stdlib.Buffer.create 4096 in
  let mem = Trace.memory () in
  let metrics = Metrics.create () in
  let r =
    Runner.run ~pattern ~detector:Perfect.canonical
      ~scheduler:(Scheduler.fair ()) ~horizon:(time 6000)
      ~until:(Runner.stop_when_all_correct_output pattern)
      ~sink:(Trace.tee mem (Trace.to_buffer buf))
      ~metrics ~pp_output:string_of_int
      ~pp_seen:(Format.asprintf "%a" Pid.Set.pp)
      (Ct_strong.automaton ~proposals)
  in
  (r, Stdlib.Buffer.contents buf, Trace.contents mem, metrics)

let parse_jsonl text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l -> ok_exn (Trace.parse_line l))

let run_tests =
  [
    test "JSONL line count equals the run's steps" (fun () ->
        let r, jsonl, _, _ = traced_run () in
        Alcotest.(check int) "lines = steps" r.Runner.steps
          (List.length (parse_jsonl jsonl)));
    test "emit -> JSONL -> parse equals the in-memory event stream" (fun () ->
        let _, jsonl, mem_events, _ = traced_run () in
        Alcotest.(check (list event)) "round-trip" mem_events (parse_jsonl jsonl));
    test "trace Step events mirror Runner.events field by field" (fun () ->
        let r, jsonl, _, _ = traced_run () in
        let steps = parse_jsonl jsonl in
        Alcotest.(check int) "same length" (List.length r.Runner.events)
          (List.length steps);
        List.iter2
          (fun (ev : _ Runner.event) traced ->
            match traced with
            | Trace.Step { time; pid; received_from; sent_to; outputs; seen } ->
              Alcotest.(check int) "time" (Time.to_int ev.Runner.time) time;
              Alcotest.(check int) "pid" (Pid.to_int ev.Runner.pid) pid;
              Alcotest.(check (option int)) "received"
                (Option.map Pid.to_int ev.Runner.received)
                received_from;
              Alcotest.(check (list int)) "sent_to"
                (List.map Pid.to_int ev.Runner.sent_to)
                sent_to;
              Alcotest.(check (list string)) "outputs"
                (List.map string_of_int ev.Runner.outputs)
                outputs;
              Alcotest.(check bool) "seen rendered" true (seen <> None)
            | other -> Alcotest.failf "not a Step: %s" (Trace.render other))
          r.Runner.events steps);
    test "runner metrics: sent >= delivered, steps match" (fun () ->
        let r, _, _, m = traced_run () in
        Alcotest.(check int) "steps" r.Runner.steps (Metrics.counter_value m "steps");
        Alcotest.(check int) "sent" r.Runner.sent
          (Metrics.counter_value m "messages_sent");
        Alcotest.(check bool) "sent >= delivered" true
          (Metrics.counter_value m "messages_sent"
          >= Metrics.counter_value m "messages_delivered"));
    test "the null sink changes nothing (zero-cost when off)" (fun () ->
        let n = 4 in
        let pattern = pattern ~n [ (2, 8) ] in
        let go sink =
          Runner.run ~pattern ~detector:Perfect.canonical
            ~scheduler:(Scheduler.fair ()) ~horizon:(time 6000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            ?sink (Ct_strong.automaton ~proposals)
        in
        let plain = go None and nulled = go (Some Trace.null) in
        Alcotest.(check int) "steps" plain.Runner.steps nulled.Runner.steps;
        Alcotest.(check bool) "same outputs" true
          (plain.Runner.outputs = nulled.Runner.outputs);
        Alcotest.(check bool) "same events" true
          (plain.Runner.events = nulled.Runner.events));
  ]

(* ---------- netsim + heartbeat + qos invariants ---------- *)

let heartbeat_run ~crashes =
  let n = 4 in
  let pattern = pattern ~n crashes in
  let mem = Trace.memory () in
  let metrics = Metrics.create () in
  let r =
    Netsim.run ~n ~pattern ~model:(Link.Synchronous { delta = 10 }) ~seed:7
      ~horizon:3000 ~sink:mem ~metrics
      (Heartbeat.node ~sink:mem ~metrics
         (Heartbeat.Fixed { period = 20; timeout = 31 }))
  in
  Qos.observe metrics (Qos.analyze r);
  (r, Trace.contents mem, metrics)

let net_tests =
  [
    test "netsim metrics: sent >= delivered, crashes counted once" (fun () ->
        let _, events, m = heartbeat_run ~crashes:[ (3, 700) ] in
        Alcotest.(check bool) "sent >= delivered" true
          (Metrics.counter_value m "messages_sent"
          >= Metrics.counter_value m "messages_delivered");
        Alcotest.(check int) "one crash event" 1
          (List.length
             (List.filter (function Trace.Crash _ -> true | _ -> false) events));
        Alcotest.(check int) "crashes counter" 1 (Metrics.counter_value m "crashes"));
    test "suspicion transitions: events and counter agree" (fun () ->
        let _, events, m = heartbeat_run ~crashes:[ (3, 700) ] in
        let suspect_events =
          List.filter (function Trace.Suspect _ -> true | _ -> false) events
        in
        Alcotest.(check int) "counter = event count"
          (List.length suspect_events)
          (Metrics.counter_value m "suspicion_transitions");
        Alcotest.(check bool) "someone starts suspecting p3" true
          (List.exists
             (function
               | Trace.Suspect { subject = 3; on = true; _ } -> true
               | _ -> false)
             events));
    test "detection latencies only for crashed subjects" (fun () ->
        let _, _, with_crash = heartbeat_run ~crashes:[ (3, 700) ] in
        let _, _, no_crash = heartbeat_run ~crashes:[] in
        let lat = Option.get (Metrics.histogram with_crash "detection_latency") in
        Alcotest.(check bool) "crash run has samples" false
          (Rlfd_obs.Sketch.is_empty lat);
        Alcotest.(check bool) "all non-negative" true
          (Rlfd_obs.Sketch.min_value lat >= 0.);
        Alcotest.(check int) "one observer-crash pair per correct process"
          3 (Rlfd_obs.Sketch.count lat);
        Alcotest.(check int) "failure-free run has none" 0
          (Metrics.histogram_count no_crash "detection_latency");
        Alcotest.(check bool) "undetected fraction recorded" true
          (Metrics.gauge_value with_crash "undetected_fraction" = Some 0.));
  ]

(* ---------- metrics registry ---------- *)

let metrics_tests =
  [
    test "counters accumulate; absent names read 0" (fun () ->
        let m = Metrics.create () in
        Alcotest.(check int) "absent" 0 (Metrics.counter_value m "x");
        Metrics.incr m "x";
        Metrics.incr ~by:4 m "x";
        Alcotest.(check int) "5" 5 (Metrics.counter_value m "x"));
    test "gauges are last-write-wins" (fun () ->
        let m = Metrics.create () in
        Alcotest.(check (option (float 0.))) "absent" None (Metrics.gauge_value m "g");
        Metrics.set_gauge m "g" 1.5;
        Metrics.set_gauge m "g" 2.5;
        Alcotest.(check (option (float 0.))) "last" (Some 2.5)
          (Metrics.gauge_value m "g"));
    test "histograms fold samples into a sketch: exact count/sum/extremes"
      (fun () ->
        let m = Metrics.create () in
        List.iter (Metrics.observe m "h") [ 3.; 1.; 2. ];
        let s = Option.get (Metrics.histogram m "h") in
        Alcotest.(check int) "count" 3 (Sketch.count s);
        Alcotest.(check (float 1e-9)) "sum" 6. (Sketch.sum s);
        Alcotest.(check (float 1e-9)) "min" 1. (Sketch.min_value s);
        Alcotest.(check (float 1e-9)) "max" 3. (Sketch.max_value s));
    test "reusing a name with a different kind raises" (fun () ->
        let m = Metrics.create () in
        Metrics.incr m "x";
        Alcotest.check_raises "counter as histogram"
          (Invalid_argument "Metrics: \"x\" is a counter, used as a histogram")
          (fun () -> Metrics.observe m "x" 1.));
    test "to_json exposes the three sections with sketch summaries" (fun () ->
        let m = Metrics.create () in
        Metrics.incr ~by:2 m "c";
        Metrics.set_gauge m "g" 0.5;
        List.iter (Metrics.observe m "h") [ 1.; 2.; 3.; 4. ];
        let j = Metrics.to_json m in
        let get path =
          List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path
        in
        Alcotest.(check (option int)) "counter" (Some 2)
          (Option.bind (get [ "counters"; "c" ]) Json.to_int_opt);
        Alcotest.(check bool) "gauge" true
          (Option.bind (get [ "gauges"; "g" ]) Json.to_float_opt = Some 0.5);
        Alcotest.(check (option int)) "hist count" (Some 4)
          (Option.bind (get [ "histograms"; "h"; "count" ]) Json.to_int_opt);
        Alcotest.(check bool) "hist sum" true
          (Option.bind (get [ "histograms"; "h"; "sum" ]) Json.to_float_opt
          = Some 10.);
        Alcotest.(check bool) "one bucket per distinct sample" true
          (match Option.bind (get [ "histograms"; "h"; "buckets" ]) Json.to_list_opt with
          | Some l -> List.length l = 4
          | None -> false);
        let pct name =
          Option.get
            (Option.bind (get [ "histograms"; "h"; name ]) Json.to_float_opt)
        in
        let eps = Rlfd_obs.Sketch.relative_error in
        Alcotest.(check bool) "p50 within sketch error" true
          (Float.abs (pct "p50" -. 2.) <= 2. *. eps);
        Alcotest.(check bool) "p95 within sketch error" true
          (Float.abs (pct "p95" -. 4.) <= 4. *. eps);
        Alcotest.(check bool) "p99 within sketch error" true
          (Float.abs (pct "p99" -. 4.) <= 4. *. eps);
        let bounds name =
          match Option.bind (get [ "histograms"; "h"; name ]) Json.to_list_opt with
          | Some [ lo; hi ] ->
            (Option.get (Json.to_float_opt lo), Option.get (Json.to_float_opt hi))
          | _ -> Alcotest.failf "missing %s" name
        in
        let lo, hi = bounds "p50_bounds" in
        Alcotest.(check bool) "p50 bounds bracket the exact value" true
          (lo <= 2. && 2. <= hi);
        let lo, hi = bounds "p99_bounds" in
        Alcotest.(check bool) "p99 bounds bracket the exact value" true
          (lo <= 4. && 4. <= hi));
    test "names are sorted; is_empty flips on first use" (fun () ->
        let m = Metrics.create () in
        Alcotest.(check bool) "empty" true (Metrics.is_empty m);
        Metrics.incr m "zz";
        Metrics.incr m "aa";
        Alcotest.(check (list string)) "sorted" [ "aa"; "zz" ] (Metrics.names m));
  ]

(* ---------- registry merge (the campaign reducer's primitive) ---------- *)

(* A canonical rendering under which merge must be order-insensitive:
   counters and gauges as-is, histograms by their sketch JSON (bucket
   counts are ints and the test samples are small integers, so sums are
   exact whatever the addition order). *)
let canonical m =
  List.map
    (fun name ->
      ( name,
        Metrics.counter_value m name,
        Metrics.gauge_value m name,
        Option.map
          (fun s -> Json.to_string (Rlfd_obs.Sketch.to_json s))
          (Metrics.histogram m name) ))
    (Metrics.names m)

let merged a b =
  let m = Metrics.create () in
  Metrics.merge ~into:m a;
  Metrics.merge ~into:m b;
  m

(* Random registries over a small name pool; the [tag] offsets keep gauge
   names disjoint between the two sides of a commutativity check (gauges
   are last-write-wins, so a shared gauge name is order-sensitive by
   design). *)
let arb_registry ~tag =
  let open QCheck in
  let gen =
    Gen.map
      (fun ops ->
        let m = Metrics.create () in
        List.iter
          (fun (kind, name_idx, v) ->
            match kind mod 3 with
            | 0 -> Metrics.incr ~by:(v mod 10) m (Printf.sprintf "c%d" name_idx)
            | 1 ->
              Metrics.set_gauge m
                (Printf.sprintf "g%d-%s" name_idx tag)
                (float_of_int v)
            | _ ->
              Metrics.observe m (Printf.sprintf "h%d" name_idx) (float_of_int v))
          ops;
        m)
      (Gen.list_size (Gen.int_range 0 20)
         (Gen.triple (Gen.int_bound 2) (Gen.int_bound 3) (Gen.int_bound 100)))
  in
  make ~print:(fun m -> Format.asprintf "%a" Metrics.pp m) gen

let merge_tests =
  [
    test "merge adds counters, overwrites gauges, merges histogram sketches"
      (fun () ->
        let a = Metrics.create () and b = Metrics.create () in
        Metrics.incr ~by:2 a "c";
        Metrics.incr ~by:3 b "c";
        Metrics.set_gauge a "g" 1.0;
        Metrics.set_gauge b "g" 9.0;
        List.iter (Metrics.observe a "h") [ 1.; 2. ];
        List.iter (Metrics.observe b "h") [ 3.; 4. ];
        Metrics.merge ~into:a b;
        Alcotest.(check int) "counter sum" 5 (Metrics.counter_value a "c");
        Alcotest.(check (option (float 0.))) "gauge last-write" (Some 9.0)
          (Metrics.gauge_value a "g");
        let together = Rlfd_obs.Sketch.create () in
        List.iter (Rlfd_obs.Sketch.add together) [ 1.; 2.; 3.; 4. ];
        Alcotest.(check bool) "merge = sketch of the concatenation" true
          (Rlfd_obs.Sketch.equal together
             (Option.get (Metrics.histogram a "h"))));
    test "merge into empty copies; source unchanged" (fun () ->
        let src = Metrics.create () in
        Metrics.incr src "c";
        Metrics.observe src "h" 7.;
        let dst = Metrics.create () in
        Metrics.merge ~into:dst src;
        Alcotest.(check int) "copied" 1 (Metrics.counter_value dst "c");
        Metrics.incr dst "c";
        Metrics.observe dst "h" 9.;
        Alcotest.(check int) "src unchanged" 1 (Metrics.counter_value src "c");
        Alcotest.(check int) "src sketch unchanged" 1
          (Metrics.histogram_count src "h"));
    test "merge kind clash raises" (fun () ->
        let a = Metrics.create () and b = Metrics.create () in
        Metrics.incr a "x";
        Metrics.observe b "x" 1.;
        Alcotest.check_raises "clash"
          (Invalid_argument "Metrics: \"x\" is a counter, used as a histogram")
          (fun () -> Metrics.merge ~into:a b));
    qtest "merge is commutative (disjoint gauges; histograms as multisets)"
      QCheck.(pair (arb_registry ~tag:"l") (arb_registry ~tag:"r"))
      (fun (a, b) -> canonical (merged a b) = canonical (merged b a));
    qtest "merge is associative"
      QCheck.(
        triple (arb_registry ~tag:"x") (arb_registry ~tag:"y")
          (arb_registry ~tag:"z"))
      (fun (a, b, c) ->
        canonical (merged (merged a b) c) = canonical (merged a (merged b c)));
  ]

(* ---------- quantile sketches ---------- *)

let sketch_of xs =
  let s = Sketch.create () in
  List.iter (Sketch.add s) xs;
  s

(* Positive float samples spanning several orders of magnitude. *)
let arb_samples =
  let open QCheck in
  let gen =
    Gen.list_size (Gen.int_range 1 60)
      (Gen.map2
         (fun mantissa scale -> mantissa *. (10. ** float_of_int scale))
         (Gen.float_range 0.1 10.) (Gen.int_range (-2) 4))
  in
  make ~print:Print.(list float) gen

let sketch_tests =
  [
    test "empty sketch: percentile raises, count 0" (fun () ->
        let s = Sketch.create () in
        Alcotest.(check int) "count" 0 (Sketch.count s);
        Alcotest.(check bool) "empty" true (Sketch.is_empty s);
        Alcotest.check_raises "percentile"
          (Invalid_argument "Sketch.percentile: empty sketch") (fun () ->
            ignore (Sketch.percentile s 0.5)));
    test "zero and negative samples land in ordered buckets" (fun () ->
        let s = sketch_of [ -3.; 0.; 5.; 0.; -0.5 ] in
        Alcotest.(check int) "count" 5 (Sketch.count s);
        Alcotest.(check (float 1e-9)) "min" (-3.) (Sketch.min_value s);
        Alcotest.(check (float 1e-9)) "max" 5. (Sketch.max_value s);
        let bucket_values = List.map (fun (lo, _, _) -> lo) (Sketch.buckets s) in
        Alcotest.(check bool) "ascending" true
          (List.sort compare bucket_values = bucket_values);
        (* the median of [-3; -0.5; 0; 0; 5] is the zero bucket: exact *)
        Alcotest.(check (float 1e-9)) "p50 exact at zero" 0.
          (Sketch.percentile s 0.5));
    qtest ~count:200 "percentiles are within the advertised relative error"
      arb_samples
      (fun xs ->
        let s = sketch_of xs in
        List.for_all
          (fun q ->
            let approx = Sketch.percentile s q in
            let exact = Stats.percentile xs q in
            Float.abs (approx -. exact) <= Sketch.relative_error *. exact
            +. 1e-9)
          [ 0.; 0.25; 0.5; 0.75; 0.95; 0.99; 1. ]);
    qtest ~count:200 "percentile bounds bracket the exact nearest-rank value"
      arb_samples
      (fun xs ->
        let s = sketch_of xs in
        List.for_all
          (fun q ->
            let lo, hi = Sketch.percentile_bounds s q in
            let exact = Stats.percentile xs q in
            let slack = 1e-9 +. (1e-12 *. Float.abs exact) in
            lo <= exact +. slack && exact <= hi +. slack)
          [ 0.; 0.5; 0.95; 0.99; 1. ]);
    qtest ~count:200 "merge is exact: sketch xs ++ sketch ys = sketch (xs @ ys)"
      QCheck.(pair arb_samples arb_samples)
      (fun (xs, ys) ->
        let merged = sketch_of xs in
        Sketch.merge ~into:merged (sketch_of ys);
        Sketch.equal merged (sketch_of (xs @ ys)));
    qtest ~count:200 "merge is commutative"
      QCheck.(pair arb_samples arb_samples)
      (fun (xs, ys) ->
        let ab = sketch_of xs and ba = sketch_of ys in
        Sketch.merge ~into:ab (sketch_of ys);
        Sketch.merge ~into:ba (sketch_of xs);
        (* float sums may differ in the last ulp across orders; counts,
           extremes and buckets must not *)
        Sketch.count ab = Sketch.count ba
        && Sketch.buckets ab = Sketch.buckets ba
        && Sketch.min_value ab = Sketch.min_value ba
        && Sketch.max_value ab = Sketch.max_value ba
        && Float.abs (Sketch.sum ab -. Sketch.sum ba)
           <= 1e-9 *. Float.abs (Sketch.sum ab));
    qtest ~count:200 "merge is associative"
      QCheck.(triple arb_samples arb_samples arb_samples)
      (fun (xs, ys, zs) ->
        let left = sketch_of xs in
        Sketch.merge ~into:left (sketch_of ys);
        Sketch.merge ~into:left (sketch_of zs);
        let inner = sketch_of ys in
        Sketch.merge ~into:inner (sketch_of zs);
        let right = sketch_of xs in
        Sketch.merge ~into:right inner;
        Sketch.count left = Sketch.count right
        && Sketch.buckets left = Sketch.buckets right
        && Float.abs (Sketch.sum left -. Sketch.sum right)
           <= 1e-9 *. Float.abs (Sketch.sum left));
    test "copy is independent of the original" (fun () ->
        let s = sketch_of [ 1.; 2. ] in
        let c = Sketch.copy s in
        Sketch.add c 3.;
        Alcotest.(check int) "original untouched" 2 (Sketch.count s);
        Alcotest.(check int) "copy grew" 3 (Sketch.count c));
    test "memory stays bounded: a million samples, few buckets" (fun () ->
        let s = Sketch.create () in
        for i = 1 to 1_000_000 do
          Sketch.add s (float_of_int (i mod 10_000))
        done;
        Alcotest.(check int) "count" 1_000_000 (Sketch.count s);
        Alcotest.(check bool) "buckets bounded by dynamic range" true
          (List.length (Sketch.buckets s) < 600));
  ]

(* ---------- profiling spans ---------- *)

let profile_tests =
  [
    test "time records and returns; spans keep first-use order" (fun () ->
        let p = Profile.create () in
        Alcotest.(check int) "result" 7 (Profile.time p "b" (fun () -> 7));
        Profile.time p "a" (fun () -> ());
        Profile.time p "b" (fun () -> ());
        Alcotest.(check (list string)) "order" [ "b"; "a" ]
          (List.map fst (Profile.spans p));
        Alcotest.(check int) "b has two samples" 2
          (List.length (List.assoc "b" (Profile.spans p))));
    test "record feeds totals; grand_total sums everything" (fun () ->
        let p = Profile.create () in
        Profile.record p "x" 1.0;
        Profile.record p "x" 2.0;
        Profile.record p "y" 0.5;
        Alcotest.(check (float 1e-9)) "total x" 3.0 (Profile.total p "x");
        Alcotest.(check (float 1e-9)) "grand" 3.5 (Profile.grand_total p));
    test "a raising thunk still records its span" (fun () ->
        let p = Profile.create () in
        (try Profile.time p "boom" (fun () -> failwith "no") with Failure _ -> ());
        Alcotest.(check int) "recorded" 1
          (List.length (List.assoc "boom" (Profile.spans p))));
    test "to_json lists spans with calls and totals" (fun () ->
        let p = Profile.create () in
        Profile.record p "x" 1.0;
        let j = Profile.to_json p in
        match Option.bind (Json.member "spans" j) Json.to_list_opt with
        | Some [ span ] ->
          Alcotest.(check (option string)) "name" (Some "x")
            (Option.bind (Json.member "name" span) Json.to_string_opt);
          Alcotest.(check (option int)) "calls" (Some 1)
            (Option.bind (Json.member "calls" span) Json.to_int_opt)
        | _ -> Alcotest.fail "expected one span");
  ]

(* ---------- timeline: the runtime observatory ---------- *)

module Timeline = Rlfd_obs.Timeline

let timeline_tests =
  [
    test "monotonic clock never decreases" (fun () ->
        let prev = ref (Profile.monotonic_ns ()) in
        for _ = 1 to 1000 do
          let t = Profile.monotonic_ns () in
          if Int64.compare t !prev < 0 then
            Alcotest.fail "monotonic_ns went backwards";
          prev := t
        done;
        let a = Profile.now () in
        let b = Profile.now () in
        Alcotest.(check bool) "now nondecreasing" true (b >= a));
    test "overflow drops the oldest records, counted, never silent" (fun () ->
        let tl = Timeline.create ~capacity:4 ~label:"ovf" () in
        let r = Timeline.recorder tl "d" in
        for i = 1 to 10 do
          Timeline.event r ~tag:i "e"
        done;
        Alcotest.(check int) "recorder dropped" 6 (Timeline.dropped r);
        let a = Timeline.merge tl in
        Alcotest.(check int) "artifact dropped" 6 a.Timeline.a_dropped;
        match a.Timeline.a_domains with
        | [ d ] ->
          Alcotest.(check int) "domain dropped" 6 d.Timeline.dom_dropped;
          Alcotest.(check (list int)) "newest 4 survive" [ 7; 8; 9; 10 ]
            (List.map
               (fun (e : Timeline.event_rec) -> e.ev_tag)
               d.Timeline.dom_events)
        | _ -> Alcotest.fail "expected one domain");
    qtest ~count:100 "span nesting is well-formed for any call tree"
      QCheck.(small_list (int_bound 2))
      (fun shape ->
        (* interpret the list as a tree: each entry spawns a span with
           that many children one level deeper.  Depth and width are
           capped so the tree always fits the ring (no drops: a dropped
           record would legitimately break the count below). *)
        let shape = List.filteri (fun i _ -> i < 5) shape in
        let tl = Timeline.create ~capacity:4096 ~label:"nest" () in
        let r = Timeline.recorder tl "d" in
        let rec build depth fanouts =
          match fanouts with
          | [] -> 0
          | f :: rest ->
            Timeline.span r ~tag:depth "s" (fun () ->
                let inner =
                  if depth < 5 then build (depth + 1) (List.init f (fun _ -> f))
                  else 0
                in
                inner + 1)
            + build depth rest
        in
        let count = build 0 shape in
        let a = Timeline.merge tl in
        let spans =
          List.concat_map (fun d -> d.Timeline.dom_spans) a.Timeline.a_domains
        in
        (* every span closed: one record per call, and each span's
           interval lies inside its chronological depth-(d-1) parent *)
        List.length spans = count
        && List.for_all
             (fun (s : Timeline.span_rec) ->
               s.sp_depth = 0
               || List.exists
                    (fun (p : Timeline.span_rec) ->
                      p.sp_depth = s.sp_depth - 1
                      && p.sp_t0 <= s.sp_t0 +. 1e-12
                      && s.sp_t0 +. s.sp_dur <= p.sp_t0 +. p.sp_dur +. 1e-12)
                    spans)
             spans);
    test "unbalanced leave and over-deep enter raise" (fun () ->
        let tl = Timeline.create ~label:"bad" () in
        let r = Timeline.recorder tl "d" in
        (try
           Timeline.leave r;
           Alcotest.fail "leave with no open span should raise"
         with Invalid_argument _ -> ());
        try
          for _ = 1 to 65 do
            Timeline.enter r "deep"
          done;
          Alcotest.fail "65-deep nesting should raise"
        with Invalid_argument _ -> ());
    test "null collector and recorder are inert" (fun () ->
        Alcotest.(check bool) "null is null" true (Timeline.is_null Timeline.null);
        let r = Timeline.recorder Timeline.null "x" in
        Alcotest.(check bool) "null recorder" true (Timeline.is_null_recorder r);
        Timeline.event r "e";
        Timeline.span r "s" (fun () -> ());
        Timeline.record_span r "p" ~dur_s:1.0;
        Alcotest.(check int) "nothing dropped" 0 (Timeline.dropped r);
        let a = Timeline.merge Timeline.null in
        Alcotest.(check int) "no domains" 0 (List.length a.Timeline.a_domains));
    test "a raising thunk still closes its span" (fun () ->
        let tl = Timeline.create ~label:"exn" () in
        let r = Timeline.recorder tl "d" in
        (try Timeline.span r "boom" (fun () -> failwith "no")
         with Failure _ -> ());
        let a = Timeline.merge tl in
        match a.Timeline.a_domains with
        | [ d ] ->
          Alcotest.(check int) "one span" 1 (List.length d.Timeline.dom_spans)
        | _ -> Alcotest.fail "expected one domain");
    test "artifact JSON is versioned" (fun () ->
        let tl = Timeline.create ~label:"v" () in
        let r = Timeline.recorder tl "d" in
        Timeline.span r "s" (fun () -> ());
        let j = Timeline.to_json (Timeline.merge tl) in
        Alcotest.(check (option int)) "timeline_version" (Some Timeline.version)
          (Option.bind (Json.member "timeline_version" j) Json.to_int_opt));
    test "normalized view erases time and pools across domains" (fun () ->
        let tl = Timeline.create ~label:"n" () in
        let r1 = Timeline.recorder tl "a" in
        let r2 = Timeline.recorder tl "b" in
        Timeline.span r2 ~tag:2 "s" (fun () -> ());
        Timeline.span r1 ~tag:1 "s" (fun () -> ());
        Timeline.event r1 "lifecycle";
        let j =
          Timeline.normalized_json ~exclude:[ "lifecycle" ] (Timeline.merge tl)
        in
        let rendered = Json.to_string j in
        Alcotest.(check bool) "no domain labels" false
          (contains_substring ~needle:"\"a\"" rendered);
        Alcotest.(check bool) "excluded name gone" false
          (contains_substring ~needle:"lifecycle" rendered);
        Alcotest.(check bool) "no timestamps" false
          (contains_substring ~needle:"t0_s" rendered));
    test "utilization decomposition: busy + idle = window" (fun () ->
        let tl = Timeline.create ~label:"u" () in
        let r = Timeline.recorder tl "d" in
        Timeline.span r "w" (fun () -> ignore (Sys.opaque_identity (List.init 1000 Fun.id)));
        Timeline.event r "late";
        let a = Timeline.merge tl in
        List.iter
          (fun (_, u) ->
            Alcotest.(check (float 1e-9))
              "busy + idle = window" u.Timeline.u_window
              (u.Timeline.u_busy +. u.Timeline.u_idle);
            Alcotest.(check bool) "gc estimate bounded" true
              (u.Timeline.u_gc_est >= 0. && u.Timeline.u_gc_est <= u.Timeline.u_busy +. 1e-12))
          (Timeline.utilization a));
    test "folded stacks carry domain-rooted paths and microseconds" (fun () ->
        let tl = Timeline.create ~label:"f" () in
        let r = Timeline.recorder tl "dom" in
        Timeline.span r "outer" (fun () -> Timeline.span r "inner" (fun () -> ()));
        let lines = Timeline.folded (Timeline.merge tl) in
        Alcotest.(check int) "two stacks" 2 (List.length lines);
        Alcotest.(check bool) "nested stack present" true
          (List.exists
             (fun l ->
               contains_substring ~needle:"dom;outer;inner " l)
             lines);
        List.iter
          (fun l ->
            match String.rindex_opt l ' ' with
            | None -> Alcotest.fail "no value field"
            | Some i ->
              let v =
                float_of_string (String.sub l (i + 1) (String.length l - i - 1))
              in
              Alcotest.(check bool) "value >= 0" true (v >= 0.))
          lines);
    test "gc counters appear on spans that allocate" (fun () ->
        let tl = Timeline.create ~label:"gc" () in
        let r = Timeline.recorder tl "d" in
        Timeline.span r "alloc" (fun () ->
            let sink = ref [] in
            for i = 1 to 200_000 do
              sink := i :: !sink
            done;
            ignore (Sys.opaque_identity !sink));
        let a = Timeline.merge tl in
        let s =
          List.hd (List.hd a.Timeline.a_domains).Timeline.dom_spans
        in
        Alcotest.(check bool) "allocated words observed" true
          (s.Timeline.sp_alloc_w > 0.);
        Alcotest.(check bool) "minor collections observed" true
          (s.Timeline.sp_minor > 0));
    test "metrics gc gauges land in the registry" (fun () ->
        let m = Metrics.create () in
        Metrics.observe_gc m;
        List.iter
          (fun g ->
            match Metrics.gauge_value m g with
            | Some v -> Alcotest.(check bool) (g ^ " >= 0") true (v >= 0.)
            | None -> Alcotest.fail (g ^ " missing"))
          [ "gc_minor_collections"; "gc_major_collections";
            "gc_promoted_words"; "gc_heap_words"; "gc_minor_words" ]);
  ]

let () =
  Alcotest.run "obs"
    [
      suite "json" json_tests;
      suite "trace" trace_tests;
      suite "runner-roundtrip" run_tests;
      suite "netsim-invariants" net_tests;
      suite "metrics" metrics_tests;
      suite "metrics-merge" merge_tests;
      suite "sketch" sketch_tests;
      suite "profile" profile_tests;
      suite "timeline" timeline_tests;
    ]
