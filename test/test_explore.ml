(* Bounded-exhaustive schedule exploration: small-scope model checking of
   the safety clauses. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 3

let agreement = Explore.agreement_check ~equal:Int.equal

let validity = Explore.validity_check ~n ~proposals ~equal:Int.equal

let safety = Explore.both agreement validity

let explorer_tests =
  [
    test "a correct algorithm survives the whole tree (ct-strong, no crash)" (fun () ->
        let report =
          Explore.run ~max_steps:9 ~max_nodes:400_000
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check int)
          (Format.asprintf "%a" Explore.pp_report report)
          0
          (List.length report.Explore.violations);
        Alcotest.(check bool) "explored a lot" true (report.Explore.nodes_explored > 10_000));
    test "ct-strong with P survives crashes exhaustively" (fun () ->
        let report =
          Explore.run ~max_steps:9 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check int) "no violations" 0 (List.length report.Explore.violations));
    test "rank consensus with P< survives exhaustively (correct-restricted)" (fun () ->
        (* correct-restricted agreement: filter decisions of the faulty p1 *)
        let faulty = pid 1 in
        let check outputs =
          agreement (List.filter (fun (p, _) -> not (Pid.equal p faulty)) outputs)
        in
        let report =
          Explore.run ~max_steps:10 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Partial_perfect.canonical ~check
            (Rank_consensus.automaton ~proposals)
        in
        Alcotest.(check int) "no violations" 0 (List.length report.Explore.violations));
    test "rank consensus is NOT uniformly safe: the explorer finds the witness" (fun () ->
        let report =
          Explore.run ~max_steps:10 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Partial_perfect.canonical ~check:agreement
            (Rank_consensus.automaton ~proposals)
        in
        match report.Explore.violations with
        | [] -> Alcotest.fail "expected a uniform-agreement violation"
        | v :: _ ->
          Alcotest.(check bool) "witness has a schedule" true (v.Explore.trail <> []);
          Alcotest.(check bool) "two different decisions" true
            (List.length v.Explore.outputs >= 2));
    test "the Marabout algorithm with P is unsafe: witness found" (fun () ->
        let report =
          Explore.run ~max_steps:8 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Perfect.canonical ~check:agreement
            (Marabout_consensus.automaton ~proposals)
        in
        Alcotest.(check bool) "violations found" true (report.Explore.violations <> []));
    test "the same algorithm with Marabout itself is exhaustively safe" (fun () ->
        let report =
          Explore.run ~max_steps:8 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Marabout.canonical ~check:safety
            (Marabout_consensus.automaton ~proposals)
        in
        Alcotest.(check int) "no violations" 0 (List.length report.Explore.violations));
    test "budget boundary: a tree of exactly max_nodes nodes is complete" (fun () ->
        (* Measure the exact tree size with a generous budget, then re-run
           with the budget at, one above, and one below that size. *)
        let explore ~max_nodes =
          Explore.run ~max_steps:4 ~max_nodes
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        let total = (explore ~max_nodes:400_000).Explore.nodes_explored in
        Alcotest.(check bool) "reference run is complete" true
          (explore ~max_nodes:400_000).Explore.complete;
        let exact = explore ~max_nodes:total in
        Alcotest.(check int) "exact budget explores everything" total
          exact.Explore.nodes_explored;
        Alcotest.(check bool) "exact budget is complete" true exact.Explore.complete;
        let above = explore ~max_nodes:(total + 1) in
        Alcotest.(check bool) "budget + 1 is complete" true above.Explore.complete;
        let below = explore ~max_nodes:(total - 1) in
        Alcotest.(check bool) "budget - 1 truncates" false below.Explore.complete;
        Alcotest.(check int) "budget - 1 explores max_nodes nodes" (total - 1)
          below.Explore.nodes_explored);
    test "node budget truncates honestly" (fun () ->
        let report =
          Explore.run ~max_steps:12 ~max_nodes:500
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "not complete" false report.Explore.complete);
    test "depth bound is respected" (fun () ->
        let report =
          Explore.run ~max_steps:4 ~max_nodes:400_000
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "deepest <= 4" true (report.Explore.deepest <= 4);
        Alcotest.(check bool) "complete" true report.Explore.complete);
  ]

let () = Alcotest.run "explore" [ suite "small-scope-model-checking" explorer_tests ]
