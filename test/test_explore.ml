(* Bounded-exhaustive schedule exploration: small-scope model checking of
   the safety clauses. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 3

let agreement = Explore.agreement_check ~equal:Int.equal

let validity = Explore.validity_check ~n ~proposals ~equal:Int.equal

let safety = Explore.both agreement validity

let explorer_tests =
  [
    test "a correct algorithm survives the whole tree (ct-strong, no crash)" (fun () ->
        let report =
          Explore.run ~max_steps:9 ~max_nodes:400_000
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check int)
          (Format.asprintf "%a" Explore.pp_report report)
          0
          (List.length report.Explore.violations);
        Alcotest.(check bool) "explored a lot" true (report.Explore.nodes_explored > 10_000));
    test "ct-strong with P survives crashes exhaustively" (fun () ->
        let report =
          Explore.run ~max_steps:9 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check int) "no violations" 0 (List.length report.Explore.violations));
    test "rank consensus with P< survives exhaustively (correct-restricted)" (fun () ->
        (* correct-restricted agreement: filter decisions of the faulty p1 *)
        let faulty = pid 1 in
        let check outputs =
          agreement (List.filter (fun (p, _) -> not (Pid.equal p faulty)) outputs)
        in
        let report =
          Explore.run ~max_steps:10 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Partial_perfect.canonical ~check
            (Rank_consensus.automaton ~proposals)
        in
        Alcotest.(check int) "no violations" 0 (List.length report.Explore.violations));
    test "rank consensus is NOT uniformly safe: the explorer finds the witness" (fun () ->
        let report =
          Explore.run ~max_steps:10 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Partial_perfect.canonical ~check:agreement
            (Rank_consensus.automaton ~proposals)
        in
        match report.Explore.violations with
        | [] -> Alcotest.fail "expected a uniform-agreement violation"
        | v :: _ ->
          Alcotest.(check bool) "witness has a schedule" true (v.Explore.trail <> []);
          Alcotest.(check bool) "two different decisions" true
            (List.length v.Explore.outputs >= 2));
    test "the Marabout algorithm with P is unsafe: witness found" (fun () ->
        let report =
          Explore.run ~max_steps:8 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Perfect.canonical ~check:agreement
            (Marabout_consensus.automaton ~proposals)
        in
        Alcotest.(check bool) "violations found" true (report.Explore.violations <> []));
    test "the same algorithm with Marabout itself is exhaustively safe" (fun () ->
        let report =
          Explore.run ~max_steps:8 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Marabout.canonical ~check:safety
            (Marabout_consensus.automaton ~proposals)
        in
        Alcotest.(check int) "no violations" 0 (List.length report.Explore.violations));
    test "budget boundary: a tree of exactly max_nodes nodes is complete" (fun () ->
        (* Measure the exact tree size with a generous budget, then re-run
           with the budget at, one above, and one below that size. *)
        let explore ~max_nodes =
          Explore.run ~max_steps:4 ~max_nodes
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        let total = (explore ~max_nodes:400_000).Explore.nodes_explored in
        Alcotest.(check bool) "reference run is complete" true
          (explore ~max_nodes:400_000).Explore.complete;
        let exact = explore ~max_nodes:total in
        Alcotest.(check int) "exact budget explores everything" total
          exact.Explore.nodes_explored;
        Alcotest.(check bool) "exact budget is complete" true exact.Explore.complete;
        let above = explore ~max_nodes:(total + 1) in
        Alcotest.(check bool) "budget + 1 is complete" true above.Explore.complete;
        let below = explore ~max_nodes:(total - 1) in
        Alcotest.(check bool) "budget - 1 truncates" false below.Explore.complete;
        Alcotest.(check int) "budget - 1 explores max_nodes nodes" (total - 1)
          below.Explore.nodes_explored);
    test "node budget truncates honestly" (fun () ->
        let report =
          Explore.run ~max_steps:12 ~max_nodes:500
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "not complete" false report.Explore.complete);
    test "depth bound is respected" (fun () ->
        let report =
          Explore.run ~max_steps:4 ~max_nodes:400_000
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "deepest <= 4" true (report.Explore.deepest <= 4);
        Alcotest.(check bool) "complete" true report.Explore.complete);
  ]

(* ---------- reductions: canon dedup + sleep-set POR ---------- *)

let d_equal = Pid.Set.equal

let reduction_tests =
  [
    test "cross-check: ct-strong+P reaches identical decision states reduced" (fun () ->
        let c =
          Explore.cross_check ~max_steps:9 ~max_nodes:2_000_000 ~d_equal
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "identical decision sets" true c.Explore.identical;
        Alcotest.(check bool) "at least 5x fewer nodes" true
          (c.Explore.node_factor >= 5.));
    test "cross-check: rank+P< (correct-restricted) identical decision states" (fun () ->
        let faulty = pid 1 in
        let check outputs =
          agreement (List.filter (fun (p, _) -> not (Pid.equal p faulty)) outputs)
        in
        let c =
          Explore.cross_check ~max_steps:10 ~max_nodes:2_000_000 ~d_equal
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Partial_perfect.canonical ~check
            (Rank_consensus.automaton ~proposals)
        in
        Alcotest.(check bool) "identical decision sets" true c.Explore.identical;
        Alcotest.(check bool) "at least 5x fewer nodes" true
          (c.Explore.node_factor >= 5.));
    test "cross-check: marabout algorithm with its own detector identical" (fun () ->
        let c =
          Explore.cross_check ~max_steps:8 ~max_nodes:2_000_000 ~d_equal
            ~pattern:(Pattern.failure_free ~n) ~detector:Marabout.canonical
            ~check:safety
            (Marabout_consensus.automaton ~proposals)
        in
        Alcotest.(check bool) "identical decision sets" true c.Explore.identical);
    test "cross-check preserves the uniformity witnesses of rank+P<" (fun () ->
        let c =
          Explore.cross_check ~max_steps:10 ~max_nodes:2_000_000 ~d_equal
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Partial_perfect.canonical ~check:agreement
            (Rank_consensus.automaton ~proposals)
        in
        Alcotest.(check bool) "reduced run still finds witnesses" true
          (c.Explore.reduced.Explore.violations <> []);
        Alcotest.(check bool) "identical" true c.Explore.identical);
    test "canon alone changes no verdict and no decision set" (fun () ->
        let explore ~canon =
          Explore.run ~max_steps:8 ~max_nodes:2_000_000 ~canon
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        let naive = explore ~canon:false and dedup = explore ~canon:true in
        Alcotest.(check (list string)) "same decision states"
          naive.Explore.decision_states dedup.Explore.decision_states;
        Alcotest.(check bool) "both complete" true
          (naive.Explore.complete && dedup.Explore.complete);
        Alcotest.(check bool) "dedup did something" true
          (dedup.Explore.deduped > 0);
        Alcotest.(check bool) "fewer nodes expanded" true
          (dedup.Explore.nodes_explored < naive.Explore.nodes_explored));
    test "the visited set never prunes states whose encodings differ" (fun () ->
        (* Distinct per-process states, message multisets, output multisets
           and step counts must all produce distinct canonical encodings —
           equal encodings are the only thing the explorer ever prunes on. *)
        let enc = Canon.encode_value in
        let base =
          Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
            ~messages:[ enc "m1" ] ~outputs:[ enc 10 ]
        in
        let variants =
          [ Canon.assemble ~step_no:4 ~states:[ enc 1; enc 2 ]
              ~messages:[ enc "m1" ] ~outputs:[ enc 10 ];
            Canon.assemble ~step_no:3 ~states:[ enc 1; enc 3 ]
              ~messages:[ enc "m1" ] ~outputs:[ enc 10 ];
            Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
              ~messages:[ enc "m1"; enc "m1" ] ~outputs:[ enc 10 ];
            Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
              ~messages:[ enc "m2" ] ~outputs:[ enc 10 ];
            Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
              ~messages:[ enc "m1" ] ~outputs:[ enc 10; enc 10 ];
            Canon.assemble ~step_no:3 ~states:[ enc 1 ] ~messages:[ enc "m1" ]
              ~outputs:[ enc 10 ] ]
        in
        List.iteri
          (fun i v ->
            Alcotest.(check bool)
              (Printf.sprintf "variant %d differs from base" i)
              false (Canon.equal base v))
          variants;
        (* and order of the multiset sections is erased: *)
        let ab =
          Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
            ~messages:[ enc "a"; enc "b" ] ~outputs:[]
        in
        let ba =
          Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
            ~messages:[ enc "b"; enc "a" ] ~outputs:[]
        in
        Alcotest.(check bool) "message order erased" true (Canon.equal ab ba));
    test "budget boundary still exact with canon pruning enabled" (fun () ->
        let explore ~max_nodes =
          Explore.run ~max_steps:4 ~max_nodes ~canon:true ~por:true ~d_equal
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        let total = (explore ~max_nodes:400_000).Explore.nodes_explored in
        let exact = explore ~max_nodes:total in
        Alcotest.(check int) "exact budget explores everything" total
          exact.Explore.nodes_explored;
        Alcotest.(check bool) "exact budget is complete" true exact.Explore.complete;
        Alcotest.(check bool) "budget + 1 is complete" true
          (explore ~max_nodes:(total + 1)).Explore.complete;
        let below = explore ~max_nodes:(total - 1) in
        Alcotest.(check bool) "budget - 1 truncates" false below.Explore.complete;
        Alcotest.(check int) "budget - 1 explores max_nodes nodes" (total - 1)
          below.Explore.nodes_explored);
    test "reduced exploration of an n=4 scope completes in budget" (fun () ->
        let proposals4 p = 10 + Pid.to_int p in
        let report =
          Explore.run ~max_steps:6 ~max_nodes:400_000 ~canon:true ~por:true
            ~d_equal
            ~pattern:(Pattern.make ~n:4 [ (pid 1, time 2) ])
            ~detector:Perfect.canonical
            ~check:
              (Explore.both
                 (Explore.agreement_check ~equal:Int.equal)
                 (Explore.validity_check ~n:4 ~proposals:proposals4
                    ~equal:Int.equal))
            (Ct_strong.automaton ~proposals:proposals4)
        in
        Alcotest.(check bool) "complete" true report.Explore.complete;
        Alcotest.(check int) "no violations" 0
          (List.length report.Explore.violations);
        Alcotest.(check bool) "pruning engaged" true
          (report.Explore.deduped > 0 && report.Explore.por_pruned > 0));
  ]

let () =
  Alcotest.run "explore"
    [
      suite "small-scope-model-checking" explorer_tests;
      suite "reductions" reduction_tests;
    ]
