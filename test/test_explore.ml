(* Bounded-exhaustive schedule exploration: small-scope model checking of
   the safety clauses. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 3

let agreement = Explore.agreement_check ~equal:Int.equal

let validity = Explore.validity_check ~n ~proposals ~equal:Int.equal

let safety = Explore.both agreement validity

let explorer_tests =
  [
    test "a correct algorithm survives the whole tree (ct-strong, no crash)" (fun () ->
        let report =
          Explore.run ~max_steps:9 ~max_nodes:400_000
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check int)
          (Format.asprintf "%a" Explore.pp_report report)
          0
          (List.length report.Explore.violations);
        Alcotest.(check bool) "explored a lot" true (report.Explore.nodes_explored > 10_000));
    test "ct-strong with P survives crashes exhaustively" (fun () ->
        let report =
          Explore.run ~max_steps:9 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check int) "no violations" 0 (List.length report.Explore.violations));
    test "rank consensus with P< survives exhaustively (correct-restricted)" (fun () ->
        (* correct-restricted agreement: filter decisions of the faulty p1 *)
        let faulty = pid 1 in
        let check outputs =
          agreement (List.filter (fun (p, _) -> not (Pid.equal p faulty)) outputs)
        in
        let report =
          Explore.run ~max_steps:10 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Partial_perfect.canonical ~check
            (Rank_consensus.automaton ~proposals)
        in
        Alcotest.(check int) "no violations" 0 (List.length report.Explore.violations));
    test "rank consensus is NOT uniformly safe: the explorer finds the witness" (fun () ->
        let report =
          Explore.run ~max_steps:10 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Partial_perfect.canonical ~check:agreement
            (Rank_consensus.automaton ~proposals)
        in
        match report.Explore.violations with
        | [] -> Alcotest.fail "expected a uniform-agreement violation"
        | v :: _ ->
          Alcotest.(check bool) "witness has a schedule" true (v.Explore.trail <> []);
          Alcotest.(check bool) "two different decisions" true
            (List.length v.Explore.outputs >= 2));
    test "the Marabout algorithm with P is unsafe: witness found" (fun () ->
        let report =
          Explore.run ~max_steps:8 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Perfect.canonical ~check:agreement
            (Marabout_consensus.automaton ~proposals)
        in
        Alcotest.(check bool) "violations found" true (report.Explore.violations <> []));
    test "the same algorithm with Marabout itself is exhaustively safe" (fun () ->
        let report =
          Explore.run ~max_steps:8 ~max_nodes:400_000
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Marabout.canonical ~check:safety
            (Marabout_consensus.automaton ~proposals)
        in
        Alcotest.(check int) "no violations" 0 (List.length report.Explore.violations));
    test "budget boundary: a tree of exactly max_nodes nodes is complete" (fun () ->
        (* Measure the exact tree size with a generous budget, then re-run
           with the budget at, one above, and one below that size. *)
        let explore ~max_nodes =
          Explore.run ~max_steps:4 ~max_nodes
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        let total = (explore ~max_nodes:400_000).Explore.nodes_explored in
        Alcotest.(check bool) "reference run is complete" true
          (explore ~max_nodes:400_000).Explore.complete;
        let exact = explore ~max_nodes:total in
        Alcotest.(check int) "exact budget explores everything" total
          exact.Explore.nodes_explored;
        Alcotest.(check bool) "exact budget is complete" true exact.Explore.complete;
        let above = explore ~max_nodes:(total + 1) in
        Alcotest.(check bool) "budget + 1 is complete" true above.Explore.complete;
        let below = explore ~max_nodes:(total - 1) in
        Alcotest.(check bool) "budget - 1 truncates" false below.Explore.complete;
        Alcotest.(check int) "budget - 1 explores max_nodes nodes" (total - 1)
          below.Explore.nodes_explored);
    test "node budget truncates honestly" (fun () ->
        let report =
          Explore.run ~max_steps:12 ~max_nodes:500
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "not complete" false report.Explore.complete);
    test "depth bound is respected" (fun () ->
        let report =
          Explore.run ~max_steps:4 ~max_nodes:400_000
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "deepest <= 4" true (report.Explore.deepest <= 4);
        Alcotest.(check bool) "complete" true report.Explore.complete);
  ]

(* ---------- reductions: canon dedup + sleep-set POR ---------- *)

let d_equal = Pid.Set.equal

let reduction_tests =
  [
    test "cross-check: ct-strong+P reaches identical decision states reduced" (fun () ->
        let c =
          Explore.cross_check ~max_steps:9 ~max_nodes:2_000_000 ~d_equal
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "identical decision sets" true c.Explore.identical;
        Alcotest.(check bool) "at least 5x fewer nodes" true
          (c.Explore.node_factor >= 5.));
    test "cross-check: rank+P< (correct-restricted) identical decision states" (fun () ->
        let faulty = pid 1 in
        let check outputs =
          agreement (List.filter (fun (p, _) -> not (Pid.equal p faulty)) outputs)
        in
        let c =
          Explore.cross_check ~max_steps:10 ~max_nodes:2_000_000 ~d_equal
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Partial_perfect.canonical ~check
            (Rank_consensus.automaton ~proposals)
        in
        Alcotest.(check bool) "identical decision sets" true c.Explore.identical;
        Alcotest.(check bool) "at least 5x fewer nodes" true
          (c.Explore.node_factor >= 5.));
    test "cross-check: marabout algorithm with its own detector identical" (fun () ->
        let c =
          Explore.cross_check ~max_steps:8 ~max_nodes:2_000_000 ~d_equal
            ~pattern:(Pattern.failure_free ~n) ~detector:Marabout.canonical
            ~check:safety
            (Marabout_consensus.automaton ~proposals)
        in
        Alcotest.(check bool) "identical decision sets" true c.Explore.identical);
    test "cross-check preserves the uniformity witnesses of rank+P<" (fun () ->
        let c =
          Explore.cross_check ~max_steps:10 ~max_nodes:2_000_000 ~d_equal
            ~pattern:(pattern ~n [ (1, 1) ])
            ~detector:Partial_perfect.canonical ~check:agreement
            (Rank_consensus.automaton ~proposals)
        in
        Alcotest.(check bool) "reduced run still finds witnesses" true
          (c.Explore.reduced.Explore.violations <> []);
        Alcotest.(check bool) "identical" true c.Explore.identical);
    test "canon alone changes no verdict and no decision set" (fun () ->
        let explore ~canon =
          Explore.run ~max_steps:8 ~max_nodes:2_000_000 ~canon
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        let naive = explore ~canon:false and dedup = explore ~canon:true in
        Alcotest.(check (list string)) "same decision states"
          naive.Explore.decision_states dedup.Explore.decision_states;
        Alcotest.(check bool) "both complete" true
          (naive.Explore.complete && dedup.Explore.complete);
        Alcotest.(check bool) "dedup did something" true
          (dedup.Explore.deduped > 0);
        Alcotest.(check bool) "fewer nodes expanded" true
          (dedup.Explore.nodes_explored < naive.Explore.nodes_explored));
    test "the visited set never prunes states whose encodings differ" (fun () ->
        (* Distinct per-process states, message multisets, output multisets
           and step counts must all produce distinct canonical encodings —
           equal encodings are the only thing the explorer ever prunes on. *)
        let enc = Canon.encode_value in
        let base =
          Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
            ~messages:[ enc "m1" ] ~outputs:[ enc 10 ]
        in
        let variants =
          [ Canon.assemble ~step_no:4 ~states:[ enc 1; enc 2 ]
              ~messages:[ enc "m1" ] ~outputs:[ enc 10 ];
            Canon.assemble ~step_no:3 ~states:[ enc 1; enc 3 ]
              ~messages:[ enc "m1" ] ~outputs:[ enc 10 ];
            Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
              ~messages:[ enc "m1"; enc "m1" ] ~outputs:[ enc 10 ];
            Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
              ~messages:[ enc "m2" ] ~outputs:[ enc 10 ];
            Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
              ~messages:[ enc "m1" ] ~outputs:[ enc 10; enc 10 ];
            Canon.assemble ~step_no:3 ~states:[ enc 1 ] ~messages:[ enc "m1" ]
              ~outputs:[ enc 10 ] ]
        in
        List.iteri
          (fun i v ->
            Alcotest.(check bool)
              (Printf.sprintf "variant %d differs from base" i)
              false (Canon.equal base v))
          variants;
        (* and order of the multiset sections is erased: *)
        let ab =
          Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
            ~messages:[ enc "a"; enc "b" ] ~outputs:[]
        in
        let ba =
          Canon.assemble ~step_no:3 ~states:[ enc 1; enc 2 ]
            ~messages:[ enc "b"; enc "a" ] ~outputs:[]
        in
        Alcotest.(check bool) "message order erased" true (Canon.equal ab ba));
    test "budget boundary still exact with canon pruning enabled" (fun () ->
        let explore ~max_nodes =
          Explore.run ~max_steps:4 ~max_nodes ~canon:true ~por:true ~d_equal
            ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~check:safety (Ct_strong.automaton ~proposals)
        in
        let total = (explore ~max_nodes:400_000).Explore.nodes_explored in
        let exact = explore ~max_nodes:total in
        Alcotest.(check int) "exact budget explores everything" total
          exact.Explore.nodes_explored;
        Alcotest.(check bool) "exact budget is complete" true exact.Explore.complete;
        Alcotest.(check bool) "budget + 1 is complete" true
          (explore ~max_nodes:(total + 1)).Explore.complete;
        let below = explore ~max_nodes:(total - 1) in
        Alcotest.(check bool) "budget - 1 truncates" false below.Explore.complete;
        Alcotest.(check int) "budget - 1 explores max_nodes nodes" (total - 1)
          below.Explore.nodes_explored);
    test "reduced exploration of an n=4 scope completes in budget" (fun () ->
        let proposals4 p = 10 + Pid.to_int p in
        let report =
          Explore.run ~max_steps:6 ~max_nodes:400_000 ~canon:true ~por:true
            ~d_equal
            ~pattern:(Pattern.make ~n:4 [ (pid 1, time 2) ])
            ~detector:Perfect.canonical
            ~check:
              (Explore.both
                 (Explore.agreement_check ~equal:Int.equal)
                 (Explore.validity_check ~n:4 ~proposals:proposals4
                    ~equal:Int.equal))
            (Ct_strong.automaton ~proposals:proposals4)
        in
        Alcotest.(check bool) "complete" true report.Explore.complete;
        Alcotest.(check int) "no violations" 0
          (List.length report.Explore.violations);
        Alcotest.(check bool) "pruning engaged" true
          (report.Explore.deduped > 0 && report.Explore.por_pruned > 0));
  ]

(* ---------- the symmetry layer ---------- *)

let sym_spec ~n =
  {
    Explore.renamer = Ct_strong.renamer;
    value_map = (fun pi -> Symmetry.value_map_of_proposals ~n ~proposals pi);
    d_rename = Symmetry.rename_set;
  }

(* States with populated message logs, reached by actually running the
   algorithm under a seeded random scheduler — the raw material for the
   renamer properties. *)
let reached_states ~seed =
  let r =
    Runner.run
      ~pattern:(Pattern.failure_free ~n)
      ~detector:Perfect.canonical
      ~scheduler:(Scheduler.random ~seed ~lambda_bias:0.3)
      ~horizon:(time 40)
      (Ct_strong.automaton ~proposals)
  in
  r.Runner.final_states

(* The orbit representative exactly as the explorer's Reduction layer picks
   it: rename the whole state map through each group element, encode each
   process state, lay the encodings out in pid order, take the
   lexicographic minimum. *)
let orbit_rep ~group states =
  let enc_with pi =
    let pid = Symmetry.apply pi in
    let value = Symmetry.value_map_of_proposals ~n ~proposals pi in
    let renamed =
      Pid.Map.fold
        (fun p s acc ->
          Pid.Map.add (pid p)
            (Canon.encode_value
               (Ct_strong.renamer.Symmetry.rename_state ~pid ~value s))
            acc)
        states Pid.Map.empty
    in
    String.concat "\x00"
      (List.rev (Pid.Map.fold (fun _ e acc -> e :: acc) renamed []))
  in
  List.fold_left
    (fun best pi ->
      let e = enc_with pi in
      if String.compare e best < 0 then e else best)
    (enc_with (Symmetry.identity ~n))
    group

let rename_states pi states =
  let pid = Symmetry.apply pi in
  let value = Symmetry.value_map_of_proposals ~n ~proposals pi in
  Pid.Map.fold
    (fun p s acc ->
      Pid.Map.add (pid p)
        (Ct_strong.renamer.Symmetry.rename_state ~pid ~value s)
        acc)
    states Pid.Map.empty

let symmetry_tests =
  [
    qtest ~count:30 "group laws: compose, inverse, identity"
      QCheck.(pair small_int small_int)
      (fun (i, j) ->
        let group = Symmetry.crash_respecting (Pattern.failure_free ~n) in
        let g = List.nth group (i mod List.length group) in
        let h = List.nth group (j mod List.length group) in
        let id = Symmetry.identity ~n in
        Symmetry.is_identity (Symmetry.compose g (Symmetry.inverse g))
        && Symmetry.images (Symmetry.compose g id) = Symmetry.images g
        && List.for_all
             (fun p ->
               Pid.equal
                 (Symmetry.apply (Symmetry.compose g h) p)
                 (Symmetry.apply g (Symmetry.apply h p)))
             (Pid.all ~n));
    qtest ~count:25 "renamer round-trip: rename by pi then pi^-1 is identity"
      QCheck.small_int
      (fun seed ->
        let states = reached_states ~seed in
        let group = Symmetry.crash_respecting (Pattern.failure_free ~n) in
        List.for_all
          (fun pi ->
            let back = rename_states (Symmetry.inverse pi) (rename_states pi states) in
            Pid.Map.for_all
              (fun p s ->
                String.compare
                  (Canon.encode_value s)
                  (Canon.encode_value (Pid.Map.find p states))
                = 0)
              back)
          group);
    qtest ~count:25
      "orbit representative is permutation-invariant (and hence idempotent)"
      QCheck.small_int
      (fun seed ->
        let states = reached_states ~seed in
        let group = Symmetry.crash_respecting (Pattern.failure_free ~n) in
        let rep = orbit_rep ~group states in
        List.for_all
          (fun pi -> String.compare (orbit_rep ~group (rename_states pi states)) rep = 0)
          group);
    test "crash-respecting group never renames across crash patterns" (fun () ->
        (* p1 crashes at 2; p2 and p3 are correct: the only admissible
           non-identity renaming swaps p2 and p3.  In particular no group
           element maps the crashed p1 onto a correct process, so states
           that differ in which crash-time class a pid belongs to can never
           fall into one orbit. *)
        let group = Symmetry.crash_respecting (pattern ~n [ (1, 2) ]) in
        Alcotest.(check int) "order two" 2 (List.length group);
        List.iter
          (fun pi ->
            Alcotest.(check bool) "fixes the crashed process" true
              (Pid.equal (Symmetry.apply pi (pid 1)) (pid 1)))
          group;
        (* different crash times are different classes even when both crash *)
        let staggered = Symmetry.crash_respecting (pattern ~n [ (1, 2); (2, 4) ]) in
        Alcotest.(check int) "staggered crashes leave only the identity" 1
          (List.length staggered));
    test "two configs differing only by a cross-class renaming do not merge" (fun () ->
        (* Same states, but held by processes in different crash classes:
           under the crash 1@2 pattern, renaming p1<->p2 is not in the
           group, so the orbit representatives differ. *)
        let group = Symmetry.crash_respecting (pattern ~n [ (1, 2) ]) in
        let states = reached_states ~seed:7 in
        let swap12 = Symmetry.of_images [ 2; 1; 3 ] in
        let renamed = rename_states swap12 states in
        Alcotest.(check bool) "orbit reps differ" false
          (String.compare (orbit_rep ~group states) (orbit_rep ~group renamed) = 0));
    test "the equivariance filter rejects rank-breaking detectors" (fun () ->
        (* With p2 crashed the group is {id, p1<->p3}.  Under P< the swap
           breaks: p1 suspects nobody while p3 suspects p2, so renaming p1
           to p3 changes the detector's answer and only the identity
           survives.  P reports the same crashed set to everyone, so it
           keeps the whole group. *)
        let pat = pattern ~n [ (2, 2) ] in
        let full = Symmetry.crash_respecting pat in
        Alcotest.(check int) "crash group has the swap" 2 (List.length full);
        let keep det =
          List.length
            (Symmetry.filter_equivariant ~pattern:pat ~detector:det ~horizon:10
               ~d_rename:Symmetry.rename_set ~d_equal:Pid.Set.equal full)
        in
        Alcotest.(check int) "P keeps the full group" 2 (keep Perfect.canonical);
        Alcotest.(check int) "P< keeps only the identity" 1
          (keep Partial_perfect.canonical));
    test "cross-check: full stack (symmetry + lambda POR) identical" (fun () ->
        let c =
          Explore.cross_check ~max_steps:8 ~max_nodes:2_000_000 ~d_equal
            ~symmetry:(sym_spec ~n)
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "identical decision sets" true c.Explore.identical;
        Alcotest.(check bool) "orbits collapsed" true
          (c.Explore.reduced.Explore.orbit_collapsed > 0);
        Alcotest.(check bool) "lambda steps pruned" true
          (c.Explore.reduced.Explore.lambda_pruned > 0);
        Alcotest.(check bool) "at least 5x fewer nodes" true
          (c.Explore.node_factor >= 5.));
    test "cross-check: symmetry alone identical" (fun () ->
        let c =
          Explore.cross_check ~max_steps:8 ~max_nodes:2_000_000 ~d_equal
            ~por:false ~por_lambda:false ~symmetry:(sym_spec ~n)
            ~pattern:(Pattern.failure_free ~n)
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "identical decision sets" true c.Explore.identical);
  ]

(* ---------- strategies and stores ---------- *)

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  f

let strategy_tests =
  [
    test "frontier strategy: workers 1 and 4 produce identical reports" (fun () ->
        let explore workers =
          Explore.run ~max_steps:8 ~max_nodes:400_000 ~canon:true ~por:true
            ~por_lambda:true ~symmetry:(sym_spec ~n) ~workers ~frontier:16
            ~d_equal
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        let r1 = explore 1 and r4 = explore 4 in
        Alcotest.(check (list string)) "same decision states"
          r1.Explore.decision_states r4.Explore.decision_states;
        Alcotest.(check int) "same node count" r1.Explore.nodes_explored
          r4.Explore.nodes_explored;
        Alcotest.(check int) "same distinct count" r1.Explore.distinct_states
          r4.Explore.distinct_states;
        Alcotest.(check int) "same frontier tasks" r1.Explore.frontier_tasks
          r4.Explore.frontier_tasks;
        Alcotest.(check bool) "complete, no violations" true
          (r1.Explore.complete && r1.Explore.violations = []
          && r4.Explore.violations = []));
    test "frontier strategy agrees with DFS on decisions and verdict" (fun () ->
        let dfs =
          Explore.run ~max_steps:8 ~max_nodes:400_000 ~canon:true ~d_equal
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        let frontier =
          Explore.run ~max_steps:8 ~max_nodes:400_000 ~canon:true ~workers:2
            ~d_equal
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check (list string)) "same decision states"
          dfs.Explore.decision_states frontier.Explore.decision_states;
        Alcotest.(check bool) "both complete" true
          (dfs.Explore.complete && frontier.Explore.complete);
        Alcotest.(check bool) "frontier split happened" true
          (frontier.Explore.frontier_tasks > 0));
    test "timeline phase spans sum to the attribution totals" (fun () ->
        let module Timeline = Rlfd_obs.Timeline in
        let attribution = ref [] in
        let tl = Timeline.create ~label:"align" () in
        let (_ : int Explore.report) =
          Explore.run ~max_steps:8 ~max_nodes:400_000 ~canon:true ~workers:2
            ~frontier:8 ~d_equal ~attribution ~timeline:tl
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        let a = Timeline.merge tl in
        let phase_sum name =
          List.fold_left
            (fun acc (d : Timeline.domain_rec) ->
              List.fold_left
                (fun acc (s : Timeline.span_rec) ->
                  if s.sp_name = name then acc +. s.sp_dur else acc)
                acc d.dom_spans)
            0. a.Timeline.a_domains
        in
        List.iter
          (fun (key, span_name) ->
            Alcotest.(check (float 1e-6))
              (span_name ^ " spans = " ^ key)
              (List.assoc key !attribution)
              (phase_sum span_name))
          [ ("expand_s", "expand"); ("hash_s", "hash");
            ("encode_s", "encode"); ("confirm_s", "confirm") ]);
    test "spill tier: tiny cache, same report as in-RAM" (fun () ->
        let in_ram =
          Explore.run ~max_steps:8 ~max_nodes:400_000 ~canon:true ~por:true
            ~d_equal
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        let dir = temp_dir "explore-spill-test" in
        let spilled =
          Explore.run ~max_steps:8 ~max_nodes:400_000 ~canon:true ~por:true
            ~spill:dir ~spill_cache:512 ~d_equal
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check (list string)) "same decision states"
          in_ram.Explore.decision_states spilled.Explore.decision_states;
        Alcotest.(check int) "same nodes" in_ram.Explore.nodes_explored
          spilled.Explore.nodes_explored;
        Alcotest.(check int) "same distinct" in_ram.Explore.distinct_states
          spilled.Explore.distinct_states;
        Alcotest.(check bool) "states actually spilled" true
          (spilled.Explore.spilled_states > 0));
    test "describe names every active layer" (fun () ->
        let lines =
          Explore.describe ~max_steps:9 ~canon:true ~por:true ~por_lambda:true
            ~symmetry:(sym_spec ~n) ~workers:4 ~d_equal
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ()
        in
        let mentions needle =
          List.exists
            (fun l ->
              let rec find i =
                i + String.length needle <= String.length l
                && (String.sub l i (String.length needle) = needle || find (i + 1))
              in
              find 0)
            lines
        in
        List.iter
          (fun needle ->
            Alcotest.(check bool) (needle ^ " mentioned") true (mentions needle))
          [ "canon"; "clamp"; "sleep"; "lambda"; "symmetry"; "frontier" ]);
  ]

(* ---------- the incremental-fingerprint kernel under paranoid audit ---------- *)

(* [~paranoid:true] recomputes every configuration's fingerprint lanes from
   scratch at every expanded edge and raises on any divergence from the
   incrementally maintained ones — the oracle for the delta-hashing
   kernel.  These scopes are small enough that the quadratic audit stays
   cheap. *)
let paranoid_tests =
  [
    test "paranoid audit passes on the headline scope, full stack" (fun () ->
        let report =
          Explore.run ~max_steps:9 ~max_nodes:400_000 ~canon:true ~por:true
            ~por_lambda:true ~symmetry:(sym_spec ~n) ~d_equal ~paranoid:true
            ~pattern:(pattern ~n [ (1, 2) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "complete" true report.Explore.complete;
        Alcotest.(check int) "no violations" 0
          (List.length report.Explore.violations));
    qtest ~count:8 "incremental fingerprints = from-scratch, random scopes"
      QCheck.(pair small_int small_int)
      (fun (d, ct) ->
        let max_steps = 5 + (d mod 4) in
        let crash_time = 1 + (ct mod 3) in
        let explore ~paranoid =
          Explore.run ~max_steps ~max_nodes:400_000 ~canon:true ~por:true
            ~por_lambda:true ~symmetry:(sym_spec ~n) ~d_equal ~paranoid
            ~pattern:(pattern ~n [ (1, crash_time) ])
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        (* The audited run must not raise, and auditing must not perturb
           what is explored. *)
        let audited = explore ~paranoid:true in
        let plain = explore ~paranoid:false in
        audited.Explore.decision_states = plain.Explore.decision_states
        && audited.Explore.nodes_explored = plain.Explore.nodes_explored
        && audited.Explore.distinct_states = plain.Explore.distinct_states
        && audited.Explore.complete && plain.Explore.complete);
    qtest ~count:8 "paranoid agrees under canon alone (no symmetry, no POR)"
      QCheck.small_int
      (fun d ->
        let max_steps = 5 + (d mod 4) in
        let explore ~paranoid =
          Explore.run ~max_steps ~max_nodes:400_000 ~canon:true ~d_equal
            ~paranoid
            ~pattern:(Pattern.failure_free ~n)
            ~detector:Perfect.canonical ~check:safety
            (Ct_strong.automaton ~proposals)
        in
        let audited = explore ~paranoid:true in
        let plain = explore ~paranoid:false in
        audited.Explore.decision_states = plain.Explore.decision_states
        && audited.Explore.nodes_explored = plain.Explore.nodes_explored);
  ]

let () =
  Alcotest.run "explore"
    [
      suite "small-scope-model-checking" explorer_tests;
      suite "reductions" reduction_tests;
      suite "symmetry" symmetry_tests;
      suite "strategies-and-stores" strategy_tests;
      suite "paranoid-fingerprint-audit" paranoid_tests;
    ]
