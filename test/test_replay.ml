(* Flight recorder: record -> replay round-trips, schedule shrinking, and
   the run-kind recording path through Scheduler.replay. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers
module Recorder = Rlfd_obs.Recorder

let n = 3

let pp_seen = Format.asprintf "%a" Pid.Set.pp

let agreement = Explore.agreement_check ~equal:Int.equal

let safety =
  Explore.both agreement (Explore.validity_check ~n ~proposals ~equal:Int.equal)

let correct_restricted pattern =
  let faulty = Pattern.faulty pattern in
  fun outputs ->
    agreement (List.filter (fun (p, _) -> not (Pid.Set.mem p faulty)) outputs)

(* A deterministic pump schedule: lambda rounds interleaved with wildcard
   receives (payload "" = match any in-flight message from that sender).
   [execute] drops what it cannot honour, so this drives any scope; its
   [executed] normalization is then fully self-contained. *)
let pump_schedule ~rounds =
  let ps = List.init n (fun i -> Pid.of_int (i + 1)) in
  List.concat
    (List.init rounds (fun _ ->
         List.map (fun p -> (p, None)) ps
         @ List.concat_map
             (fun p ->
               List.filter_map
                 (fun src ->
                   if Pid.equal p src then None else Some (p, Some (src, "")))
                 ps)
             ps))

let scope_json = Rlfd_obs.Json.Obj [ ("test", Rlfd_obs.Json.String "replay") ]

(* The exhaustive portfolio of test_explore as (name, pattern, executor,
   check); the executor closures hide each automaton's existential
   state/message types, so the list is well-typed. *)
let portfolio =
  [ ( "ct-strong+P failure-free", Pattern.failure_free ~n,
      (fun ~pattern ~check ~schedule ->
        Replay.execute ~pp_output:string_of_int ~pp_seen ~pattern
          ~detector:Perfect.canonical ~check ~schedule
          (Ct_strong.automaton ~proposals)),
      safety );
    ( "ct-strong+P crash", pattern ~n [ (1, 2) ],
      (fun ~pattern ~check ~schedule ->
        Replay.execute ~pp_output:string_of_int ~pp_seen ~pattern
          ~detector:Perfect.canonical ~check ~schedule
          (Ct_strong.automaton ~proposals)),
      safety );
    ( "rank+P< crash", pattern ~n [ (1, 1) ],
      (fun ~pattern ~check ~schedule ->
        Replay.execute ~pp_output:string_of_int ~pp_seen ~pattern
          ~detector:Partial_perfect.canonical ~check ~schedule
          (Rank_consensus.automaton ~proposals)),
      correct_restricted (pattern ~n [ (1, 1) ]) );
    ( "marabout+marabout crash", pattern ~n [ (1, 1) ],
      (fun ~pattern ~check ~schedule ->
        Replay.execute ~pp_output:string_of_int ~pp_seen ~pattern
          ~detector:Marabout.canonical ~check ~schedule
          (Marabout_consensus.automaton ~proposals)),
      safety ) ]

let roundtrip_artifact a =
  match Recorder.of_lines (Recorder.to_lines a) with
  | Ok a' -> a'
  | Error msg -> Alcotest.failf "artifact does not round-trip: %s" msg

let portfolio_tests =
  List.map
    (fun (name, pattern, execute, check) ->
      test (name ^ ": record->replay is byte-identical") (fun () ->
          let schedule = pump_schedule ~rounds:3 in
          let e = execute ~pattern ~check ~schedule in
          Alcotest.(check bool) "pump executed something" true (e.Replay.steps <> []);
          (* determinism of the executor itself *)
          let e2 = execute ~pattern ~check ~schedule in
          Alcotest.(check string) "final states equal" e.Replay.final e2.Replay.final;
          Alcotest.(check (list string)) "decision sets equal" e.Replay.decisions
            e2.Replay.decisions;
          (* the executed normalization is self-contained: re-running it drops
             nothing and reaches the same canonical outcome *)
          let a = Replay.to_artifact ~scope:scope_json e in
          let a = roundtrip_artifact a in
          let schedule' =
            match Replay.schedule_of_artifact a with
            | Ok s -> s
            | Error msg -> Alcotest.fail msg
          in
          let e' = execute ~pattern ~check ~schedule:schedule' in
          Alcotest.(check int) "replay drops nothing" 0 e'.Replay.dropped;
          Alcotest.(check (list string)) "no mismatches" []
            (Replay.check_against a e')))
    portfolio

(* ---------- explorer violations through the recorder ---------- *)

let explore_violations () =
  let pattern = pattern ~n [ (1, 1) ] in
  let report =
    Explore.run ~max_steps:10 ~max_nodes:400_000 ~capture:true ~pattern
      ~detector:Partial_perfect.canonical ~check:agreement
      (Rank_consensus.automaton ~proposals)
  in
  (pattern, report)

let execute_rank ~pattern ~schedule =
  Replay.execute ~pp_output:string_of_int ~pp_seen ~pattern
    ~detector:Partial_perfect.canonical ~check:agreement ~schedule
    (Rank_consensus.automaton ~proposals)

let violation_tests =
  [
    test "every captured violation replays to the recorded verdict" (fun () ->
        let pattern, report = explore_violations () in
        Alcotest.(check bool) "witnesses found" true
          (report.Explore.violations <> []);
        (* The explorer reports every violating node it visits, including
           descendants of earlier violations; the replayer reports the first
           step at which the check fires.  They agree exactly on the first
           witness, and on later ones the replay can only fire earlier. *)
        List.iteri
          (fun i v ->
            let e = execute_rank ~pattern ~schedule:v.Explore.schedule in
            Alcotest.(check int) "nothing dropped" 0 e.Replay.dropped;
            match e.Replay.violation with
            | None -> Alcotest.fail "replay lost the violation"
            | Some (at, reason) ->
              Alcotest.(check bool) "fires no later than recorded" true
                (at <= v.Explore.at_step);
              if i = 0 then begin
                Alcotest.(check int) "same step" v.Explore.at_step at;
                Alcotest.(check string) "same reason" v.Explore.reason reason
              end)
          report.Explore.violations);
    test "a violation artifact survives save/load and verifies" (fun () ->
        let pattern, report = explore_violations () in
        let v = List.hd report.Explore.violations in
        let e = execute_rank ~pattern ~schedule:v.Explore.schedule in
        let a = Replay.to_artifact ~scope:scope_json e in
        let file = Filename.temp_file "rlfd_replay" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove file)
          (fun () ->
            Recorder.save file a;
            let a' =
              match Recorder.load file with
              | Ok a -> a
              | Error msg -> Alcotest.fail msg
            in
            Alcotest.(check (list string)) "identical lines"
              (Recorder.to_lines a) (Recorder.to_lines a');
            let schedule =
              match Replay.schedule_of_artifact a' with
              | Ok s -> s
              | Error msg -> Alcotest.fail msg
            in
            Alcotest.(check (list string)) "replay verifies" []
              (Replay.check_against a' (execute_rank ~pattern ~schedule))));
    test "capture changes neither the verdicts nor the traversal" (fun () ->
        let pattern = pattern ~n [ (1, 1) ] in
        let explore ~capture =
          Explore.run ~max_steps:10 ~max_nodes:400_000 ~capture ~pattern
            ~detector:Partial_perfect.canonical ~check:agreement
            (Rank_consensus.automaton ~proposals)
        in
        let off = explore ~capture:false and on = explore ~capture:true in
        Alcotest.(check int) "same nodes" off.Explore.nodes_explored
          on.Explore.nodes_explored;
        Alcotest.(check int) "same violation count"
          (List.length off.Explore.violations)
          (List.length on.Explore.violations);
        Alcotest.(check (list string)) "same decision states"
          off.Explore.decision_states on.Explore.decision_states);
  ]

(* ---------- shrinking ---------- *)

let shrink_rank ~pattern ~schedule =
  Replay.shrink ~pp_output:string_of_int ~pp_seen ~pattern
    ~detector:Partial_perfect.canonical ~check:agreement ~schedule
    (Rank_consensus.automaton ~proposals)

let shrink_tests =
  [
    test "shrunk schedules still violate and never grow" (fun () ->
        let pattern, report = explore_violations () in
        List.iter
          (fun v ->
            let s = shrink_rank ~pattern ~schedule:v.Explore.schedule in
            Alcotest.(check bool) "no longer than the input" true
              (List.length s.Replay.schedule <= List.length v.Explore.schedule);
            Alcotest.(check bool) "still violates" true
              (s.Replay.execution.Replay.violation <> None);
            (* and the result is its own fixed point: re-executing it drops
               nothing and still violates *)
            let e = execute_rank ~pattern ~schedule:s.Replay.schedule in
            Alcotest.(check int) "self-contained" 0 e.Replay.dropped;
            Alcotest.(check bool) "violation preserved" true
              (e.Replay.violation <> None))
          report.Explore.violations);
    test "the shrunk result is 1-minimal" (fun () ->
        let pattern, report = explore_violations () in
        let v = List.hd report.Explore.violations in
        let s = shrink_rank ~pattern ~schedule:v.Explore.schedule in
        let len = List.length s.Replay.schedule in
        for drop = 0 to len - 1 do
          let candidate =
            List.filteri (fun i _ -> i <> drop) s.Replay.schedule
          in
          let e = execute_rank ~pattern ~schedule:candidate in
          Alcotest.(check bool)
            (Printf.sprintf "dropping step %d breaks the violation" drop)
            true
            (e.Replay.violation = None
            || List.length e.Replay.executed >= len)
        done);
    test "shrinking a non-violating schedule is rejected" (fun () ->
        let pattern = Pattern.failure_free ~n in
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument "Replay.shrink: the schedule does not violate")
          (fun () ->
            ignore
              (Replay.shrink ~pp_output:string_of_int ~pp_seen ~pattern
                 ~detector:Perfect.canonical ~check:safety
                 ~schedule:(pump_schedule ~rounds:1)
                 (Ct_strong.automaton ~proposals))));
    qtest ~count:60 "execute is total on arbitrary subsequences"
      QCheck.(list_of_size (Gen.int_bound 30) small_nat)
      (fun mask ->
        let pattern = pattern ~n [ (1, 1) ] in
        let base =
          (execute_rank ~pattern ~schedule:(pump_schedule ~rounds:2))
            .Replay.executed
        in
        let sub =
          List.filteri
            (fun i _ -> List.exists (fun k -> k mod List.length base = i) mask)
            base
        in
        let e = execute_rank ~pattern ~schedule:sub in
        List.length e.Replay.executed + e.Replay.dropped = List.length sub
        && List.length e.Replay.executed <= List.length sub);
  ]

(* ---------- run-kind artifacts: Scheduler.replay round-trip ---------- *)

let run_kind_tests =
  [
    test "a recorded run re-executes byte-identically under Scheduler.replay"
      (fun () ->
        let n = 4 in
        let pattern = pattern ~n [ (2, 40) ] in
        let record scheduler =
          let detector, queries =
            Detector.taped ~pp:pp_seen Perfect.canonical
          in
          let r =
            Runner.run ~pattern ~detector ~scheduler ~horizon:(time 6000)
              ~until:(Runner.stop_when_all_correct_output pattern)
              (Ct_strong.automaton ~proposals)
          in
          Replay.runner_artifact ~scope:scope_json ~pp_output:string_of_int
            ~queries:(queries ()) r
        in
        let a = record (Scheduler.fair ()) in
        let a = roundtrip_artifact a in
        let a' = record (Scheduler.replay (Replay.replay_entries a)) in
        Alcotest.(check (list string)) "byte-identical artifact"
          (Recorder.to_lines a) (Recorder.to_lines a'));
    test "replay entries carry exact message identities" (fun () ->
        let pattern = pattern ~n [ (1, 30) ] in
        let detector, queries = Detector.taped ~pp:pp_seen Perfect.canonical in
        let r =
          Runner.run ~pattern ~detector ~scheduler:(Scheduler.fair ())
            ~horizon:(time 6000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Ct_strong.automaton ~proposals)
        in
        let a =
          Replay.runner_artifact ~scope:scope_json ~pp_output:string_of_int
            ~queries:(queries ()) r
        in
        let entries = Replay.replay_entries a in
        Alcotest.(check int) "one entry per step" r.Runner.steps
          (List.length entries);
        let receives =
          List.length (List.filter (fun (_, _, m) -> m <> None) entries)
        in
        Alcotest.(check int) "receive count matches the run" r.Runner.delivered
          receives);
  ]

(* ---------- recorder codec edges ---------- *)

let codec_tests =
  [
    qtest ~count:100 "hex encode/decode round-trips arbitrary bytes"
      QCheck.string
      (fun s -> Recorder.hex_decode (Recorder.hex_encode s) = Ok s);
    test "of_lines rejects foreign and corrupt headers" (fun () ->
        List.iter
          (fun lines ->
            match Recorder.of_lines lines with
            | Ok _ ->
              Alcotest.failf "accepted %s" (String.concat "|" lines)
            | Error _ -> ())
          [ [];
            [ {|{"flight":"other","schema_version":1,"kind":"run","scope":{}}|} ];
            [ {|{"flight":"rlfd","schema_version":99,"kind":"run","scope":{}}|} ];
            [ {|{"flight":"rlfd","schema_version":1,"kind":"run","scope":{}}|} ]
            (* no outcome line *) ]);
    test "hex_decode rejects odd length and non-hex digits" (fun () ->
        Alcotest.(check bool) "odd" true
          (Result.is_error (Recorder.hex_decode "abc"));
        Alcotest.(check bool) "bad digit" true
          (Result.is_error (Recorder.hex_decode "zz")));
  ]

let () =
  Alcotest.run "replay"
    [
      suite "portfolio-roundtrip" portfolio_tests;
      suite "explorer-violations" violation_tests;
      suite "shrinking" shrink_tests;
      suite "run-artifacts" run_kind_tests;
      suite "codec" codec_tests;
    ]
