(* The streaming QoS observatory: the online estimator must reproduce
   Qos.analyze — the retained-run oracle — exactly, on every scope the
   portfolio exercises and on random small runs, while never needing the
   retained outputs at all. *)

open Rlfd_net
open Helpers
module Trace = Rlfd_obs.Trace
module Metrics = Rlfd_obs.Metrics
module Sketch = Rlfd_obs.Sketch

(* One simulated scope: run the heartbeat detector twice over the same
   seed — once retained for Qos.analyze, once streaming-only — and
   return (post-hoc report, streaming summary, exact streaming report). *)
let run_scope ?(snapshot_every = 0) ?(progress = Trace.null) ~n ~pattern
    ~model ~seed ~horizon style =
  let retained =
    Netsim.run ~n ~pattern ~model ~seed ~horizon (Heartbeat.node style)
  in
  let est =
    Qos_stream.create ~label:"test" ~snapshot_every ~progress
      ~retain_samples:true ~n ~pattern ()
  in
  let tap = Qos_stream.sink est in
  let streamed =
    Netsim.run ~retain_outputs:false ~sink:tap ~n ~pattern ~model ~seed
      ~horizon
      (Heartbeat.node ~sink:tap style)
  in
  Alcotest.(check int)
    "both runs end at the same time" retained.Netsim.end_time
    streamed.Netsim.end_time;
  Alcotest.(check int)
    "retain_outputs:false keeps no outputs" 0
    (List.length streamed.Netsim.outputs);
  let end_time = streamed.Netsim.end_time in
  ( Qos.analyze retained,
    Qos_stream.finish est ~end_time,
    Option.get (Qos_stream.to_report est ~end_time) )

let multiset xs = List.sort compare xs

let check_exact_match (posthoc : Qos.report) summary (streaming : Qos.report) =
  (match Qos_stream.agrees summary posthoc with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "streaming disagrees with Qos.analyze: %s" msg);
  Alcotest.(check (list (float 1e-9)))
    "detection latencies match exactly"
    (multiset posthoc.Qos.detection_latencies)
    (multiset streaming.Qos.detection_latencies);
  Alcotest.(check (list (float 1e-9)))
    "mistake durations match exactly"
    (multiset posthoc.Qos.mistake_durations)
    (multiset streaming.Qos.mistake_durations);
  Alcotest.(check int) "undetected" posthoc.Qos.undetected
    streaming.Qos.undetected;
  Alcotest.(check int) "false episodes" posthoc.Qos.false_episodes
    streaming.Qos.false_episodes;
  Alcotest.(check int) "messages" posthoc.Qos.messages streaming.Qos.messages;
  Alcotest.(check bool) "complete" posthoc.Qos.complete streaming.Qos.complete;
  Alcotest.(check bool) "accurate" posthoc.Qos.accurate streaming.Qos.accurate

(* ---------- the portfolio scopes (deterministic) ---------- *)

let portfolio_scopes =
  let sync = Link.Synchronous { delta = 10 } in
  let psync = Link.Partially_synchronous { gst = 1000; delta = 10; wild_max = 120 } in
  let async = Link.Asynchronous { mean = 15.; spike_every = 15; spike = 400 } in
  let fixed = Heartbeat.Fixed { period = 20; timeout = 31 } in
  let safe_fixed = Heartbeat.Fixed { period = 20; timeout = 31 } in
  let adaptive =
    Heartbeat.Adaptive { period = 20; initial_timeout = 31; backoff = 30 }
  in
  [ ("sync perfect", sync, safe_fixed, [ (3, 700) ]);
    ("sync failure-free", sync, safe_fixed, []);
    ("psync fixed", psync, fixed, [ (3, 700) ]);
    ("psync adaptive", psync, adaptive, [ (3, 700) ]);
    ("async fixed", async, Heartbeat.Fixed { period = 20; timeout = 60 }, [ (3, 700) ]);
    ("lossy", Link.lossy ~drop:0.15 sync, fixed, [ (2, 500) ]);
    ("two crashes", sync, safe_fixed, [ (1, 300); (4, 900) ]);
    ("crash after horizon", sync, safe_fixed, [ (2, 9_999) ]) ]

let portfolio_tests =
  List.map
    (fun (name, model, style, crashes) ->
      test ("streaming matches analyze: " ^ name) (fun () ->
          let n = 4 in
          let posthoc, summary, streaming =
            run_scope ~n ~pattern:(pattern ~n crashes) ~model ~seed:42
              ~horizon:3000 style
          in
          check_exact_match posthoc summary streaming))
    portfolio_scopes

(* ---------- random small runs (the qcheck oracle property) ---------- *)

let arb_scope =
  let open QCheck in
  let gen =
    Gen.map
      (fun ((n0, seed, model_idx), (style_idx, crashes)) ->
        let n = 3 + (n0 mod 4) in
        let model =
          match model_idx mod 4 with
          | 0 -> Link.Synchronous { delta = 10 }
          | 1 -> Link.Partially_synchronous { gst = 400; delta = 10; wild_max = 90 }
          | 2 -> Link.Asynchronous { mean = 12.; spike_every = 9; spike = 200 }
          | _ -> Link.lossy ~drop:0.25 (Link.Synchronous { delta = 8 })
        in
        let style =
          if style_idx mod 2 = 0 then Heartbeat.Fixed { period = 20; timeout = 31 }
          else Heartbeat.Adaptive { period = 20; initial_timeout = 31; backoff = 25 }
        in
        let crashes =
          crashes
          |> List.map (fun (p, t) -> (1 + (p mod n), 50 + (t mod 1500)))
          |> List.sort_uniq (fun (p, _) (q, _) -> compare p q)
          |> List.filteri (fun i _ -> i < n - 1)
        in
        (n, seed, model, style, crashes))
      (Gen.pair
         (Gen.triple (Gen.int_bound 100) (Gen.int_bound 100_000) (Gen.int_bound 100))
         (Gen.pair (Gen.int_bound 1)
            (Gen.list_size (Gen.int_range 0 3)
               (Gen.pair (Gen.int_bound 100) (Gen.int_bound 10_000)))))
  in
  let print (n, seed, model, style, crashes) =
    Format.asprintf "n=%d seed=%d model=%a style=%a crashes=%s" n seed Link.pp
      model Heartbeat.pp_style style
      (String.concat ","
         (List.map (fun (p, t) -> Printf.sprintf "%d@%d" p t) crashes))
  in
  make ~print gen

let oracle_tests =
  [
    qtest ~count:120 "streaming estimator = Qos.analyze on random runs"
      arb_scope
      (fun (n, seed, model, style, crashes) ->
        let posthoc, summary, streaming =
          run_scope ~n ~pattern:(pattern ~n crashes) ~model ~seed
            ~horizon:1200 style
        in
        (match Qos_stream.agrees summary posthoc with
        | Ok () -> ()
        | Error msg -> QCheck.Test.fail_reportf "disagreement: %s" msg);
        multiset streaming.Qos.detection_latencies
        = multiset posthoc.Qos.detection_latencies
        && multiset streaming.Qos.mistake_durations
           = multiset posthoc.Qos.mistake_durations
        && streaming.Qos.complete = posthoc.Qos.complete
        && streaming.Qos.accurate = posthoc.Qos.accurate
        && streaming.Qos.undetected = posthoc.Qos.undetected);
  ]

(* ---------- the detector zoo × partitions (oracle extended) ---------- *)

(* Same double-run discipline as [run_scope], but generic over the whole
   zoo: any (impl, topology, adaptive) spec, under any partition
   schedule, must stream to exactly what Qos.analyze ~partitions says. *)
let run_zoo_scope ?(partitions = []) ~n ~pattern ~model ~seed ~horizon spec =
  let (Detector_impl.Sim retained) =
    Detector_impl.simulate ~partitions ~n ~pattern ~model ~seed ~horizon spec
  in
  let est =
    Qos_stream.create ~label:"zoo" ~retain_samples:true ~partitions ~n
      ~pattern ()
  in
  let tap = Qos_stream.sink est in
  let (Detector_impl.Sim streamed) =
    Detector_impl.simulate ~retain_outputs:false ~sink:tap ~partitions ~n
      ~pattern ~model ~seed ~horizon spec
  in
  Alcotest.(check int)
    "both runs end at the same time" retained.Netsim.end_time
    streamed.Netsim.end_time;
  let end_time = streamed.Netsim.end_time in
  ( Qos.analyze ~partitions retained,
    Qos_stream.finish est ~end_time,
    Option.get (Qos_stream.to_report est ~end_time) )

let spec ?(topology = Topology.All_to_all) ?backoff ?(retries = 1) impl
    ~timeout =
  { Detector_impl.impl; topology; period = 20; timeout; backoff; retries }

let zoo_portfolio =
  let sync = Link.Synchronous { delta = 10 } in
  let psync = Link.Partially_synchronous { gst = 1000; delta = 10; wild_max = 120 } in
  let cut ~starts ~heals ~k n =
    [ Partition.make ~starts ~heals ~island:(Partition.island_of_size ~n ~k) ]
  in
  [ ("hb/all partition heals", sync, spec `Heartbeat ~timeout:31,
     (fun n -> cut ~starts:600 ~heals:1200 ~k:1 n), []);
    ("hb/all partition + crash", sync, spec `Heartbeat ~timeout:31,
     (fun n -> cut ~starts:600 ~heals:1200 ~k:2 n), [ (3, 1500) ]);
    ("pingack/all sync", sync, spec `Pingack ~timeout:41, (fun _ -> []),
     [ (3, 700) ]);
    ("pingack/hier partitioned", sync,
     spec `Pingack ~topology:Topology.Hierarchical ~timeout:41,
     (fun n -> cut ~starts:500 ~heals:1000 ~k:1 n), [ (2, 1400) ]);
    ("hb/ring2 partitioned", sync,
     spec `Heartbeat ~topology:(Topology.ring ~k:2) ~timeout:31,
     (fun n -> cut ~starts:400 ~heals:800 ~k:2 n), []);
    ("pingack/hier adaptive psync", psync,
     spec `Pingack ~topology:Topology.Hierarchical ~backoff:25 ~timeout:41,
     (fun _ -> []), [ (3, 700) ]);
    ("overlapping cuts", sync, spec `Heartbeat ~timeout:31,
     (fun n ->
       cut ~starts:400 ~heals:900 ~k:1 n @ cut ~starts:700 ~heals:1300 ~k:2 n),
     [ (4, 1600) ]) ]

let zoo_tests =
  List.map
    (fun (name, model, mk_spec, mk_partitions, crashes) ->
      test ("zoo streaming matches analyze: " ^ name) (fun () ->
          let n = 5 in
          let partitions = mk_partitions n in
          let posthoc, summary, streaming =
            run_zoo_scope ~partitions ~n ~pattern:(pattern ~n crashes)
              ~model ~seed:42 ~horizon:3000 mk_spec
          in
          check_exact_match posthoc summary streaming;
          Alcotest.(check int) "partition episodes agree"
            posthoc.Qos.partition_episodes summary.Qos_stream.partition_episodes))
    zoo_portfolio

(* The qcheck oracle, widened across the zoo: random (impl, topology,
   adaptive) spec, random link model, random crashes, random partition
   schedule — streaming must equal Qos.analyze ~partitions exactly. *)
let arb_zoo_scope =
  let open QCheck in
  let gen =
    Gen.map
      (fun ((n0, seed, model_idx), (impl_idx, topo_idx, adapt),
            (crashes, part)) ->
        let n = 3 + (n0 mod 4) in
        let model =
          match model_idx mod 4 with
          | 0 -> Link.Synchronous { delta = 10 }
          | 1 -> Link.Partially_synchronous { gst = 400; delta = 10; wild_max = 90 }
          | 2 -> Link.Asynchronous { mean = 12.; spike_every = 9; spike = 200 }
          | _ -> Link.lossy ~drop:0.25 (Link.Synchronous { delta = 8 })
        in
        let impl = if impl_idx mod 2 = 0 then `Heartbeat else `Pingack in
        let topology =
          match topo_idx mod 3 with
          | 0 -> Topology.All_to_all
          | 1 -> Topology.ring ~k:2
          | _ -> Topology.Hierarchical
        in
        let backoff = if adapt then Some 25 else None in
        let spec =
          { Detector_impl.impl; topology; period = 20; timeout = 31; backoff;
            retries = 1 }
        in
        let crashes =
          crashes
          |> List.map (fun (p, t) -> (1 + (p mod n), 50 + (t mod 900)))
          |> List.sort_uniq (fun (p, _) (q, _) -> compare p q)
          |> List.filteri (fun i _ -> i < n - 1)
        in
        let partitions =
          match part with
          | None -> []
          | Some (starts0, len0, k0) ->
            let starts = 50 + (starts0 mod 600) in
            let heals = starts + 40 + (len0 mod 400) in
            let k = 1 + (k0 mod (n - 1)) in
            [ Partition.make ~starts ~heals
                ~island:(Partition.island_of_size ~n ~k) ]
        in
        (n, seed, model, spec, crashes, partitions))
      (Gen.triple
         (Gen.triple (Gen.int_bound 100) (Gen.int_bound 100_000) (Gen.int_bound 100))
         (Gen.triple (Gen.int_bound 1) (Gen.int_bound 2) Gen.bool)
         (Gen.pair
            (Gen.list_size (Gen.int_range 0 3)
               (Gen.pair (Gen.int_bound 100) (Gen.int_bound 10_000)))
            (Gen.opt
               (Gen.triple (Gen.int_bound 1_000) (Gen.int_bound 1_000)
                  (Gen.int_bound 6)))))
  in
  let print (n, seed, model, spec, crashes, partitions) =
    Format.asprintf "n=%d seed=%d model=%a spec=%s crashes=%s partitions=%s" n
      seed Link.pp model
      (Detector_impl.describe spec)
      (String.concat ","
         (List.map (fun (p, t) -> Printf.sprintf "%d@%d" p t) crashes))
      (Partition.describe partitions)
  in
  make ~print gen

let zoo_oracle_tests =
  [
    qtest ~count:100 "zoo streaming = Qos.analyze on random partitioned runs"
      arb_zoo_scope
      (fun (n, seed, model, spec, crashes, partitions) ->
        let posthoc, summary, streaming =
          run_zoo_scope ~partitions ~n ~pattern:(pattern ~n crashes) ~model
            ~seed ~horizon:1200 spec
        in
        (match Qos_stream.agrees summary posthoc with
        | Ok () -> ()
        | Error msg -> QCheck.Test.fail_reportf "disagreement: %s" msg);
        multiset streaming.Qos.detection_latencies
        = multiset posthoc.Qos.detection_latencies
        && multiset streaming.Qos.mistake_durations
           = multiset posthoc.Qos.mistake_durations
        && streaming.Qos.partition_episodes = posthoc.Qos.partition_episodes
        && streaming.Qos.complete = posthoc.Qos.complete
        && streaming.Qos.accurate = posthoc.Qos.accurate
        && streaming.Qos.undetected = posthoc.Qos.undetected);
  ]

(* ---------- streaming-only surfaces ---------- *)

let stream_tests =
  [
    test "snapshots flow to the progress sink with monotone times" (fun () ->
        let n = 4 in
        let mem = Trace.memory () in
        let _, summary, _ =
          run_scope ~snapshot_every:200 ~progress:mem ~n
            ~pattern:(pattern ~n [ (3, 700) ])
            ~model:(Link.Synchronous { delta = 10 })
            ~seed:7 ~horizon:3000
            (Heartbeat.Fixed { period = 20; timeout = 31 })
        in
        let snaps =
          List.filter_map
            (function Trace.Qos_snapshot _ as e -> Some e | _ -> None)
            (Trace.contents mem)
        in
        Alcotest.(check bool) "several snapshots" true (List.length snaps >= 5);
        let times = List.map Trace.time_of snaps in
        Alcotest.(check bool) "strictly increasing" true
          (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length times - 1) times)
             (List.tl times));
        List.iter
          (function
            | Trace.Qos_snapshot { msgs; bandwidth; undetected; _ } ->
              Alcotest.(check bool) "msgs grow" true (msgs >= 0);
              Alcotest.(check bool) "bandwidth non-negative" true (bandwidth >= 0.);
              Alcotest.(check bool) "undetected non-negative" true (undetected >= 0)
            | _ -> ())
          snaps;
        (* after the crash is detected, snapshots report full coverage *)
        (match List.rev snaps with
        | Trace.Qos_snapshot { detected; undetected; _ } :: _ ->
          Alcotest.(check int) "last snapshot: all 3 observers detect" 3 detected;
          Alcotest.(check int) "none missing" 0 undetected
        | _ -> Alcotest.fail "no snapshots");
        Alcotest.(check bool) "summary complete" true summary.Qos_stream.complete);
    test "snapshot round-trips through JSONL like any other event" (fun () ->
        let snap =
          Trace.Qos_snapshot
            { time = 100; label = "x"; suspected = 1; detected = 2;
              undetected = 3; false_episodes = 4; det_p50 = 1.5;
              det_p95 = 2.5; det_p99 = 3.5; msgs = 6; bandwidth = 7.5 }
        in
        match Trace.parse_line (Rlfd_obs.Json.to_string (Trace.to_json snap)) with
        | Ok e -> Alcotest.(check bool) "round-trip" true (e = snap)
        | Error msg -> Alcotest.failf "parse failed: %s" msg);
    test "observe lands sketches and gauges in a registry" (fun () ->
        let n = 4 in
        let _, summary, _ =
          run_scope ~n
            ~pattern:(pattern ~n [ (3, 700) ])
            ~model:(Link.Synchronous { delta = 10 })
            ~seed:7 ~horizon:3000
            (Heartbeat.Fixed { period = 20; timeout = 31 })
        in
        let m = Metrics.create () in
        Qos_stream.observe m summary;
        Alcotest.(check int) "detection histogram count" 3
          (Metrics.histogram_count m "detection_latency");
        Alcotest.(check (option (float 1e-9))) "undetected fraction" (Some 0.)
          (Metrics.gauge_value m "undetected_fraction");
        Alcotest.(check bool) "query accuracy recorded" true
          (Metrics.gauge_value m "query_accuracy" <> None));
    test "query accuracy is 1 on a perfect run, below 1 with mistakes" (fun () ->
        let n = 4 in
        let perfect_summary =
          let _, s, _ =
            run_scope ~n
              ~pattern:(pattern ~n [ (3, 700) ])
              ~model:(Link.Synchronous { delta = 10 })
              ~seed:42 ~horizon:3000
              (Heartbeat.Fixed { period = 20; timeout = 31 })
          in
          s
        in
        Alcotest.(check (float 1e-9)) "perfect" 1.
          perfect_summary.Qos_stream.query_accuracy;
        let flaky_summary =
          let _, s, _ =
            run_scope ~n
              ~pattern:(pattern ~n [])
              ~model:(Link.Partially_synchronous
                        { gst = 1000; delta = 10; wild_max = 120 })
              ~seed:42 ~horizon:3000
              (Heartbeat.Fixed { period = 20; timeout = 31 })
          in
          s
        in
        Alcotest.(check bool) "mistakes cost accuracy" true
          (flaky_summary.Qos_stream.query_accuracy < 1.
          && flaky_summary.Qos_stream.query_accuracy > 0.));
  ]

let () =
  Alcotest.run "qos-stream"
    [
      suite "portfolio" portfolio_tests;
      suite "oracle" oracle_tests;
      suite "zoo" zoo_tests;
      suite "zoo-oracle" zoo_oracle_tests;
      suite "streaming" stream_tests;
    ]
