(* Lossy links and the reliable-channel stack (Section 1.1's substrate). *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_net
open Helpers

let n = 4

(* the ring token from test_net, restated: a payload that must survive n*3
   hops to produce outputs *)
let ring_node : (unit, int, int) Netsim.node =
  let next ~n self = Pid.of_int ((Pid.to_int self mod n) + 1) in
  {
    Netsim.node_name = "ring";
    init =
      (fun ~n ~self ->
        if Pid.to_int self = 1 then ((), [ Netsim.Send (next ~n (Pid.of_int 1), 1) ])
        else ((), []));
    on_message =
      (fun ~n ~self ~now:_ () ~src:_ hops ->
        if hops >= 3 * n then ((), [], [ hops ])
        else ((), [ Netsim.Send (next ~n self, hops + 1) ], [ hops ]));
    on_timer = (fun ~n:_ ~self:_ ~now:_ () ~tag:_ -> ((), [], []));
  }

let lossy = Link.lossy ~drop:0.4 (Link.Synchronous { delta = 5 })

let link_tests =
  [
    test "lossy links actually drop" (fun () ->
        let rng = Rng.make 5 in
        let dropped =
          List.length
            (List.filter
               (fun _ -> Link.transmit lossy rng ~now:0 = None)
               (List.init 500 Fun.id))
        in
        Alcotest.(check bool)
          (Format.asprintf "%d/500 dropped" dropped)
          true
          (dropped > 120 && dropped < 280));
    test "loss-free models never drop" (fun () ->
        let rng = Rng.make 5 in
        List.iter
          (fun _ ->
            Alcotest.(check bool) "delivered" true
              (Link.transmit (Link.Synchronous { delta = 5 }) rng ~now:0 <> None))
          (List.init 100 Fun.id));
    test "lossy validates drop rate" (fun () ->
        Alcotest.check_raises "drop=1" (Invalid_argument "Link.lossy: drop out of [0,1)")
          (fun () -> ignore (Link.lossy ~drop:1.0 (Link.Synchronous { delta = 1 }))));
    test "lossy keeps the base delay bound" (fun () ->
        Alcotest.(check (option int)) "bound" (Some 5) (Link.bound_after_gst lossy));
  ]

let channel_tests =
  [
    test "the bare ring dies on a lossy link" (fun () ->
        let r =
          Netsim.run ~n ~pattern:(Pattern.failure_free ~n) ~model:lossy ~seed:3
            ~horizon:20_000 ring_node
        in
        (* a single 40%-lossy token walk of 12 hops survives with p < 0.003 *)
        Alcotest.(check bool) "token lost" true (List.length r.Netsim.outputs < 3 * n));
    test "the wrapped ring completes on the same link" (fun () ->
        let r =
          Netsim.run ~n ~pattern:(Pattern.failure_free ~n) ~model:lossy ~seed:3
            ~horizon:20_000
            (Channel.reliable ~retransmit_every:15 ring_node)
        in
        Alcotest.(check bool) "token survived" true (List.length r.Netsim.outputs >= 3 * n));
    test "no duplicate inner deliveries" (fun () ->
        let r =
          Netsim.run ~n ~pattern:(Pattern.failure_free ~n) ~model:lossy ~seed:7
            ~horizon:20_000
            (Channel.reliable ~retransmit_every:15 ring_node)
        in
        (* each hop value is delivered exactly once ring-wide *)
        let hops = List.map (fun (_, _, h) -> h) r.Netsim.outputs in
        let sorted = List.sort compare hops in
        let rec no_dup = function
          | a :: b :: _ when a = b -> false
          | _ :: rest -> no_dup rest
          | [] -> true
        in
        Alcotest.(check bool) "unique hops" true (no_dup sorted));
    test "channel quiesces once acks land (loss-free)" (fun () ->
        let r =
          Netsim.run ~n ~pattern:(Pattern.failure_free ~n)
            ~model:(Link.Synchronous { delta = 5 })
            ~seed:3 ~horizon:20_000
            (Channel.reliable ~retransmit_every:15 ring_node)
        in
        Pid.Map.iter
          (fun p st ->
            Alcotest.(check int)
              (Format.asprintf "%a outbox empty" Pid.pp p)
              0 (Channel.unacked st))
          r.Netsim.final_states);
    test "inner state is observable through the wrapper" (fun () ->
        let r =
          Netsim.run ~n ~pattern:(Pattern.failure_free ~n)
            ~model:(Link.Synchronous { delta = 5 })
            ~seed:3 ~horizon:20_000
            (Channel.reliable ~retransmit_every:15 ring_node)
        in
        Pid.Map.iter (fun _ st -> Channel.inner st) r.Netsim.final_states);
    test "rejects a zero retransmission period" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Channel.reliable: retransmit_every must be >= 1") (fun () ->
            ignore (Channel.reliable ~retransmit_every:0 ring_node)));
    qtest ~count:15 "wrapped ring survives any seed on a 40% lossy link"
      QCheck.small_int (fun seed ->
        let r =
          Netsim.run ~n ~pattern:(Pattern.failure_free ~n) ~model:lossy ~seed
            ~horizon:40_000
            (Channel.reliable ~retransmit_every:15 ring_node)
        in
        List.length r.Netsim.outputs >= 3 * n);
    test "heartbeats over a reliable channel stay perfect-grade" (fun () ->
        (* loss would otherwise cause false suspicions even on a synchronous
           base link; the channel restores the Perfect implementation -
           with a timeout enlarged by the retransmission worst case *)
        let pattern = pattern ~n [ (3, 800) ] in
        (* the timeout must absorb several retransmission rounds: a beat
           dropped k times arrives ~k*15 late *)
        let style = Heartbeat.Fixed { period = 30; timeout = 120 } in
        let r =
          Netsim.run ~n ~pattern
            ~model:(Link.lossy ~drop:0.2 (Link.Synchronous { delta = 5 }))
            ~seed:9 ~horizon:4000
            (Channel.reliable ~retransmit_every:15 (Heartbeat.node style))
        in
        let report = Qos.analyze r in
        Alcotest.(check bool) "complete" true report.Qos.complete;
        Alcotest.(check bool) "accurate" true report.Qos.accurate);
  ]

let () =
  Alcotest.run "channel"
    [ suite "lossy-links" link_tests; suite "reliable-channel" channel_tests ]
