open Rlfd_kernel
open Rlfd_fd
open Helpers

let n = 5

let horizon = time 100

let window = Classes.default_window ~horizon

let member cls detector pattern =
  Classes.member cls pattern ~horizon ~window (Detector.history detector pattern)

let check_member what cls detector pattern = check_holds what (member cls detector pattern)

let check_not_member what cls detector pattern =
  check_violated what (member cls detector pattern)

let two_crashes = pattern ~n [ (2, 10); (4, 35) ]

let heavy = pattern ~n [ (1, 5); (2, 10); (3, 20); (4, 30) ]

let none = Pattern.failure_free ~n

(* ---------- canonical Perfect ---------- *)

let perfect_tests =
  [
    test "P outputs exactly the crashed set" (fun () ->
        let out = Detector.query Perfect.canonical two_crashes (pid 1) (time 12) in
        Alcotest.(check string) "at 12" "{p2}" (Format.asprintf "%a" Pid.Set.pp out));
    test "P is Perfect on two crashes" (fun () ->
        check_member "P in P" Classes.Perfect Perfect.canonical two_crashes);
    test "P is Perfect under heavy crashes" (fun () ->
        check_member "P in P" Classes.Perfect Perfect.canonical heavy);
    test "P is Perfect on failure-free" (fun () ->
        check_member "P in P" Classes.Perfect Perfect.canonical none);
    test "P is also Strong and Eventually-*" (fun () ->
        check_member "S" Classes.Strong Perfect.canonical two_crashes;
        check_member "<>P" Classes.Eventually_perfect Perfect.canonical two_crashes;
        check_member "<>S" Classes.Eventually_strong Perfect.canonical two_crashes);
    test "delayed P is still Perfect" (fun () ->
        check_member "P(lag)" Classes.Perfect (Perfect.delayed ~lag:7) two_crashes);
    test "delayed P rejects negative lag" (fun () ->
        Alcotest.check_raises "lag" (Invalid_argument "Perfect.delayed: negative lag")
          (fun () -> ignore (Perfect.delayed ~lag:(-1))));
    test "staggered P is Perfect" (fun () ->
        check_member "P(staggered)" Classes.Perfect
          (Perfect.staggered ~seed:3 ~max_lag:6) two_crashes);
    test "staggered lags differ per observer" (fun () ->
        let d = Perfect.staggered ~seed:3 ~max_lag:20 in
        (* at some instant shortly after the crash, observers with different
           notification lags must disagree *)
        let disagreement_at t =
          let sets =
            List.map (fun q -> Detector.query d two_crashes q (time t)) (Pid.all ~n)
          in
          not (List.for_all (Pid.Set.equal (List.hd sets)) sets)
        in
        Alcotest.(check bool) "observers disagree transiently" true
          (List.exists disagreement_at (List.init 25 (fun i -> 10 + i))));
  ]

(* ---------- Eventually Perfect ---------- *)

let ev_perfect_tests =
  let d = Ev_perfect.canonical ~stabilization:(time 50) ~seed:9 in
  [
    test "noisy before stabilization" (fun () ->
        let wrong_somewhere =
          List.exists
            (fun t ->
              List.exists
                (fun q ->
                  let out = Detector.query d two_crashes q (time t) in
                  not
                    (Pid.Set.subset out (Pattern.crashed_by two_crashes (time t))))
                (Pid.all ~n))
            (List.init 50 Fun.id)
        in
        Alcotest.(check bool) "false suspicions exist" true wrong_somewhere);
    test "exact after stabilization" (fun () ->
        List.iter
          (fun t ->
            List.iter
              (fun q ->
                let out = Detector.query d two_crashes q (time t) in
                Alcotest.(check bool) "equals crashed" true
                  (Pid.Set.equal out (Pattern.crashed_by two_crashes (time t))))
              (Pid.all ~n))
          [ 50; 60; 99 ]);
    test "<>P member but not P" (fun () ->
        check_member "<>P" Classes.Eventually_perfect d two_crashes;
        check_not_member "not P" Classes.Perfect d two_crashes);
    test "noise bounds validated" (fun () ->
        Alcotest.check_raises "noise" (Invalid_argument "Ev_perfect.noisy: noise out of [0,1]")
          (fun () -> ignore (Ev_perfect.noisy ~stabilization:(time 1) ~noise:1.5 ~seed:0)));
  ]

(* ---------- Strong ---------- *)

let strong_tests =
  [
    test "realistic S is Perfect (the collapse)" (fun () ->
        check_member "S(realistic) in P" Classes.Perfect Strong.realistic heavy);
    test "clairvoyant S is Strong" (fun () ->
        check_member "S(clairvoyant) in S" Classes.Strong Strong.clairvoyant heavy);
    test "clairvoyant S is not Perfect" (fun () ->
        check_not_member "accuracy broken" Classes.Perfect Strong.clairvoyant heavy);
    test "clairvoyant trusts the smallest correct process" (fun () ->
        (* in [heavy], p5 is the only correct process *)
        let out = Detector.query Strong.clairvoyant heavy (pid 1) (time 0) in
        Alcotest.(check bool) "p5 unsuspected" false (Pid.Set.mem (pid 5) out);
        Alcotest.(check bool) "p2 suspected at t=0" true (Pid.Set.mem (pid 2) out));
  ]

(* ---------- Eventually Strong ---------- *)

let ev_strong_tests =
  let d = Ev_strong.canonical ~seed:4 ~noise:0.3 in
  [
    test "<>S member" (fun () -> check_member "<>S" Classes.Eventually_strong d two_crashes);
    test "not Perfect (false suspicions)" (fun () ->
        check_not_member "not P" Classes.Perfect d two_crashes);
    test "trusted process is smallest alive" (fun () ->
        Alcotest.(check (option int)) "before crash" (Some 1)
          (Option.map Pid.to_int (Ev_strong.trusted heavy (time 0)));
        Alcotest.(check (option int)) "after p1 crash" (Some 2)
          (Option.map Pid.to_int (Ev_strong.trusted heavy (time 5)));
        Alcotest.(check (option int)) "eventually p5" (Some 5)
          (Option.map Pid.to_int (Ev_strong.trusted heavy (time 50))));
    test "never suspects the trusted process" (fun () ->
        List.iter
          (fun t ->
            match Ev_strong.trusted two_crashes (time t) with
            | None -> ()
            | Some trusted ->
              List.iter
                (fun q ->
                  let out = Detector.query d two_crashes q (time t) in
                  Alcotest.(check bool) "trusted unsuspected" false
                    (Pid.Set.mem trusted out))
                (Pid.all ~n))
          (List.init 100 Fun.id));
  ]

(* ---------- Omega, Scribe, Marabout, P< ---------- *)

let other_tests =
  [
    test "Omega leader is smallest alive" (fun () ->
        Alcotest.(check int) "t=0" 1
          (Pid.to_int (Detector.query Omega.canonical heavy (pid 3) (time 0)));
        Alcotest.(check int) "t=40" 5
          (Pid.to_int (Detector.query Omega.canonical heavy (pid 3) (time 40))));
    test "Omega as suspicions trusts only the leader" (fun () ->
        let out = Detector.query (Omega.as_suspicions ~n) heavy (pid 2) (time 40) in
        Alcotest.(check string) "all but p5" "{p1,p2,p3,p4}"
          (Format.asprintf "%a" Pid.Set.pp out));
    test "Scribe output is the full prefix" (fun () ->
        let prefix = Detector.query Scribe.canonical two_crashes (pid 1) (time 20) in
        Alcotest.(check int) "one event" 1 (List.length (Pattern.prefix_events prefix)));
    test "Scribe projected to suspicions is Perfect" (fun () ->
        check_member "C in P" Classes.Perfect Scribe.as_suspicions heavy);
    test "Marabout outputs the faulty set from time 0" (fun () ->
        let out = Detector.query Marabout.canonical two_crashes (pid 1) Time.zero in
        Alcotest.(check string) "future crashes" "{p2,p4}"
          (Format.asprintf "%a" Pid.Set.pp out));
    test "Marabout is Strong but not Perfect" (fun () ->
        check_member "M in S" Classes.Strong Marabout.canonical two_crashes;
        check_not_member "M not P (real-time accuracy)" Classes.Perfect Marabout.canonical
          two_crashes);
    test "P< is Partially Perfect" (fun () ->
        check_member "P< in P<" Classes.Partially_perfect Partial_perfect.canonical heavy);
    test "P< is not Perfect (no completeness upward)" (fun () ->
        (* two_crashes leaves p1 correct, and p1 can never suspect p2 *)
        check_not_member "P< not P" Classes.Perfect Partial_perfect.canonical two_crashes);
    test "P< looks Perfect when only the top rank survives" (fun () ->
        (* in [heavy] the only correct process is p5, which sees every crash
           below it: the partial completeness gap is invisible *)
        check_member "P< ~ P here" Classes.Perfect Partial_perfect.canonical heavy);
    test "P< tells p_j only about lower indices" (fun () ->
        let out = Detector.query Partial_perfect.canonical heavy (pid 3) (time 50) in
        Alcotest.(check string) "only below 3" "{p1,p2}"
          (Format.asprintf "%a" Pid.Set.pp out);
        let out1 = Detector.query Partial_perfect.canonical heavy (pid 1) (time 50) in
        Alcotest.(check bool) "p1 knows nothing" true (Pid.Set.is_empty out1));
    test "delayed P< is still Partially Perfect" (fun () ->
        check_member "P<(lag)" Classes.Partially_perfect (Partial_perfect.delayed ~lag:4)
          heavy);
  ]

(* ---------- class checkers on synthetic histories ---------- *)

let synthetic_tests =
  let constant set = History.of_fun (fun _ _ -> set) in
  [
    test "strong accuracy rejects early suspicion" (fun () ->
        let h = constant (Pid.Set.of_ints [ 2 ]) in
        (* p2 crashes at 10, suspected from 0: accuracy violated *)
        check_violated "early suspicion"
          (Classes.strong_accuracy two_crashes ~horizon ~window h));
    test "strong completeness rejects ignoring a crash" (fun () ->
        let h = constant Pid.Set.empty in
        check_violated "no suspicion"
          (Classes.strong_completeness two_crashes ~horizon ~window h));
    test "weak completeness accepts one observer" (fun () ->
        (* only p1 suspects the crashed ones *)
        let h =
          History.of_fun (fun q t ->
              if Pid.equal q (pid 1) then Pattern.crashed_by two_crashes t
              else Pid.Set.empty)
        in
        check_holds "one observer suffices"
          (Classes.weak_completeness two_crashes ~horizon ~window h);
        check_violated "strong needs all"
          (Classes.strong_completeness two_crashes ~horizon ~window h));
    test "weak accuracy needs one untouched correct process" (fun () ->
        let h = constant (Pid.Set.of_ints [ 1; 2; 3; 4 ]) in
        (* p5 never suspected: weak accuracy holds *)
        check_holds "p5 spared" (Classes.weak_accuracy two_crashes ~horizon ~window h);
        let h_all = constant (Pid.Set.of_ints [ 1; 2; 3; 4; 5 ]) in
        check_violated "nobody spared"
          (Classes.weak_accuracy two_crashes ~horizon ~window h_all));
    test "eventual accuracy forgives a noisy prefix" (fun () ->
        let h =
          History.of_fun (fun _q t ->
              if Time.(t < time 60) then Pid.Set.of_ints [ 1; 2; 3; 4; 5 ]
              else Pattern.crashed_by two_crashes t)
        in
        check_holds "eventual strong accuracy"
          (Classes.eventual_strong_accuracy two_crashes ~horizon ~window h);
        check_violated "not plain accuracy"
          (Classes.strong_accuracy two_crashes ~horizon ~window h));
    test "partial completeness ignores higher observers" (fun () ->
        (* p5 crashes; nobody above it exists, so partial completeness is
           vacuous even though no one suspects it *)
        let f = pattern ~n [ (5, 10) ] in
        let h = constant Pid.Set.empty in
        check_holds "vacuous at the top"
          (Classes.partial_completeness f ~horizon ~window h);
        check_violated "strong completeness still fails"
          (Classes.strong_completeness f ~horizon ~window h));
    test "classify finds all classes of canonical P" (fun () ->
        let classes =
          Classes.classify two_crashes ~horizon ~window
            (Detector.history Perfect.canonical two_crashes)
        in
        Alcotest.(check int) "all nine" (List.length Classes.all_classes)
          (List.length classes));
    test "weak-completeness-only detector is Q (and W) but not P or S" (fun () ->
        let d = Ev_strong.weakly_complete in
        check_member "in Q" Classes.Quasi_perfect d two_crashes;
        check_member "in W" Classes.Weak d two_crashes;
        check_not_member "not P" Classes.Perfect d two_crashes;
        check_not_member "not S" Classes.Strong d two_crashes);
  ]

(* ---------- History.Recorder ---------- *)

let recorder_tests =
  [
    test "history is a step function" (fun () ->
        let r = History.Recorder.create ~n ~init:0 in
        History.Recorder.record r (pid 1) (time 5) 10;
        History.Recorder.record r (pid 1) (time 9) 20;
        let h = History.Recorder.history r in
        Alcotest.(check int) "before" 0 (h (pid 1) (time 4));
        Alcotest.(check int) "at 5" 10 (h (pid 1) (time 5));
        Alcotest.(check int) "between" 10 (h (pid 1) (time 8));
        Alcotest.(check int) "after" 20 (h (pid 1) (time 100)));
    test "record rejects time travel" (fun () ->
        let r = History.Recorder.create ~n ~init:0 in
        History.Recorder.record r (pid 1) (time 5) 1;
        Alcotest.check_raises "backwards"
          (Invalid_argument "History.Recorder.record: time went backwards") (fun () ->
            History.Recorder.record r (pid 1) (time 4) 2));
    test "last" (fun () ->
        let r = History.Recorder.create ~n ~init:7 in
        Alcotest.(check int) "init" 7 (History.Recorder.last r (pid 2));
        History.Recorder.record r (pid 2) (time 3) 9;
        Alcotest.(check int) "after" 9 (History.Recorder.last r (pid 2)));
    test "agree_upto finds first difference" (fun () ->
        let a = History.of_fun (fun _ t -> Time.to_int t) in
        let b = History.of_fun (fun _ t -> if Time.(t < time 7) then Time.to_int t else 0) in
        match History.agree_upto a b ~n ~upto:(time 20) ~equal:Int.equal with
        | Some (_, t) -> Alcotest.(check int) "t=7" 7 (Time.to_int t)
        | None -> Alcotest.fail "expected a difference");
  ]

let () =
  Alcotest.run "fd"
    [
      suite "perfect" perfect_tests;
      suite "eventually-perfect" ev_perfect_tests;
      suite "strong" strong_tests;
      suite "eventually-strong" ev_strong_tests;
      suite "other-detectors" other_tests;
      suite "class-checkers" synthetic_tests;
      suite "history-recorder" recorder_tests;
    ]
