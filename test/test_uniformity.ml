(* EXP-8: Section 6.2 - uniform consensus is strictly harder than
   (correct-restricted) consensus; P< suffices for the latter. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 5

let run_rank ?(detector = Partial_perfect.canonical) ?(scheduler = `Fair) pattern =
  run_consensus ~scheduler ~detector ~pattern (Rank_consensus.automaton ~proposals)

let check_nonuniform what r =
  check_all_hold what
    (Properties.check_consensus ~uniform:false ~proposals ~equal:Int.equal r)

let rank_positive_tests =
  [
    test "failure-free: everyone follows p1" (fun () ->
        let r = run_rank (Pattern.failure_free ~n) in
        check_nonuniform "failure-free" r;
        List.iter (fun v -> Alcotest.(check int) "p1's value" 1001 v) (decision_values r));
    test "p1 crashed from the start: p2 leads" (fun () ->
        let r = run_rank (pattern ~n [ (1, 0) ]) in
        check_nonuniform "p1 dead" r;
        let correct_decisions =
          List.filter_map
            (fun (_, p, v) -> if Pid.to_int p > 1 then Some v else None)
            r.Runner.outputs
        in
        List.iter (fun v -> Alcotest.(check int) "p2's value" 1002 v) correct_decisions);
    test "chain of crashes" (fun () ->
        let r = run_rank (pattern ~n [ (1, 10); (2, 20); (3, 30) ]) in
        check_nonuniform "three crashes" r);
    test "works with delayed P<" (fun () ->
        let r =
          run_rank ~detector:(Partial_perfect.delayed ~lag:15) (pattern ~n [ (2, 9) ])
        in
        check_nonuniform "delayed P<" r);
    qtest ~count:40 "correct-restricted spec across the environment"
      (arb_pattern ~n ~horizon:120)
      (fun pattern ->
        let r = run_rank pattern in
        Properties.check_consensus ~uniform:false ~proposals ~equal:Int.equal r
        |> List.for_all (fun (_, res) -> Classes.holds res));
    qtest ~count:25 "correct-restricted spec under random schedules"
      QCheck.(pair (arb_pattern ~n ~horizon:120) small_int)
      (fun (pattern, seed) ->
        let r = run_rank ~scheduler:(`Random seed) pattern in
        Properties.check_consensus ~uniform:false ~proposals ~equal:Int.equal r
        |> List.for_all (fun (_, res) -> Classes.holds res));
    qtest ~count:25 "adversarial delays cannot split the correct processes"
      QCheck.(pair small_int (int_range 2 n))
      (fun (seed, victim) ->
        (* crash one process early, delay its outgoing messages long past
           everyone's suspicion: survivors must still agree *)
        let victim = pid victim in
        let pattern = Pattern.crash (Pattern.failure_free ~n) victim (time 1) in
        let scheduler =
          Scheduler.constrained
            ~base:(Scheduler.random ~seed ~lambda_bias:0.2)
            [ Scheduler.delay_from victim ~until:(time 1000) ]
        in
        let r =
          Runner.run ~pattern ~detector:Partial_perfect.canonical ~scheduler
            ~horizon:(time 8000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Rank_consensus.automaton ~proposals)
        in
        Classes.holds (Properties.agreement ~equal:Int.equal r)
        && Classes.holds (Properties.termination r));
  ]

let uniformity_witness_tests =
  [
    test "the witness run: p1 decides alone and differently" (fun () ->
        let p1 = pid 1 in
        let pattern = pattern ~n [ (1, 1) ] in
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.delay_from p1 ~until:(time 3000) ]
        in
        let r =
          Runner.run ~pattern ~detector:Partial_perfect.canonical ~scheduler
            ~horizon:(time 8000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Rank_consensus.automaton ~proposals)
        in
        (* p1 decided its own value at t=0, then crashed *)
        Alcotest.(check (option int)) "p1's lonely decision" (Some 1001)
          (Option.map snd (Runner.first_output r p1));
        (* the correct processes agree among themselves... *)
        check_holds "correct-restricted agreement"
          (Properties.agreement ~equal:Int.equal r);
        (* ...but not with the dead p1 *)
        check_violated "uniform agreement"
          (Properties.uniform_agreement ~equal:Int.equal r));
    test "the same run with full P is uniform (ct-strong)" (fun () ->
        (* contrast: the total algorithm with a Perfect detector survives the
           same adversary with uniform agreement intact *)
        let p1 = pid 1 in
        let pattern = pattern ~n [ (1, 1) ] in
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.delay_from p1 ~until:(time 3000) ]
        in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 9000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Ct_strong.automaton ~proposals)
        in
        check_holds "uniform agreement" (Properties.uniform_agreement ~equal:Int.equal r);
        check_holds "termination" (Properties.termination r));
    test "rank consensus is not total (p1 consults nobody)" (fun () ->
        let r = run_rank (Pattern.failure_free ~n) in
        Alcotest.(check bool) "not total" false (Totality.is_total r));
    test "P< genuinely lacks upward knowledge: p1 cannot detect anyone" (fun () ->
        (* all but p1 crash; rank consensus still terminates for p1 (it waits
           on nobody), but a hypothetical wait on higher processes would hang:
           we check the detector output stays empty at p1 *)
        let pattern = pattern ~n [ (2, 5); (3, 5); (4, 5); (5, 5) ] in
        List.iter
          (fun t ->
            Alcotest.(check bool) "p1 sees nothing" true
              (Pid.Set.is_empty
                 (Detector.query Partial_perfect.canonical pattern (pid 1) (time t))))
          [ 0; 10; 100; 1000 ];
        let r = run_rank pattern in
        check_nonuniform "p1 alone survives" r);
  ]

let () =
  Alcotest.run "uniformity"
    [
      suite "rank-consensus-positive" rank_positive_tests;
      suite "uniformity-separation" uniformity_witness_tests;
    ]
