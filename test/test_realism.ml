(* EXP-5 / EXP-6: the realism condition (Section 3) as an executable check. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_reduction
open Helpers

let n = 5

let horizon = time 60

let pairs ~seed ~count =
  Realism.prefix_sharing_pairs ~n ~horizon ~count (Rng.derive ~seed ~salts:[ 0x99 ])

let check_realistic name d =
  test name (fun () ->
      let verdict = Realism.check_suspicions d ~pairs:(pairs ~seed:5 ~count:60) in
      Alcotest.(check bool)
        (Format.asprintf "%a" Realism.pp_verdict verdict)
        true (Realism.is_realistic verdict))

let check_refuted name d =
  test name (fun () ->
      let verdict = Realism.check_suspicions d ~pairs:(pairs ~seed:5 ~count:60) in
      Alcotest.(check bool) "refuted" false (Realism.is_realistic verdict))

let verdict_tests =
  [
    check_realistic "canonical P is realistic" Perfect.canonical;
    check_realistic "delayed P is realistic" (Perfect.delayed ~lag:5);
    check_realistic "staggered P is realistic" (Perfect.staggered ~seed:3 ~max_lag:5);
    check_realistic "<>P is realistic"
      (Ev_perfect.canonical ~stabilization:(time 30) ~seed:8);
    check_realistic "realistic S is realistic" Strong.realistic;
    check_realistic "<>S is realistic" (Ev_strong.canonical ~seed:2 ~noise:0.25);
    check_realistic "Scribe is realistic" Scribe.as_suspicions;
    check_realistic "P< is realistic" Partial_perfect.canonical;
    check_refuted "Marabout is refuted" Marabout.canonical;
    check_refuted "clairvoyant S is refuted" Strong.clairvoyant;
  ]

let paper_example_tests =
  [
    test "Marabout fails on the paper's own F1/F2 pair" (fun () ->
        let f1, f2, witness = Marabout.paper_example ~n in
        let verdict = Realism.check_suspicions Marabout.canonical ~pairs:[ (f1, f2) ] in
        match verdict with
        | Realism.Realistic_on_samples _ -> Alcotest.fail "Marabout passed F1/F2"
        | Realism.Not_realistic c ->
          Alcotest.(check bool) "difference is before divergence" true
            Time.(c.Realism.time < c.Realism.diverge_at);
          Alcotest.(check bool) "witness covers T=9" true
            Time.(c.Realism.time <= witness));
    test "the Scribe passes F1/F2" (fun () ->
        let f1, f2, _ = Marabout.paper_example ~n in
        let verdict =
          Realism.check
            ~equal:Pattern.prefix_equal
            ~pp:Pattern.pp_prefix Scribe.canonical
            ~pairs:[ (f1, f2) ]
        in
        Alcotest.(check bool) "realistic" true (Realism.is_realistic verdict));
    test "the Omega leader oracle is realistic" (fun () ->
        let f1, f2, _ = Marabout.paper_example ~n in
        let verdict =
          Realism.check ~equal:Pid.equal ~pp:Pid.pp Omega.canonical ~pairs:[ (f1, f2) ]
        in
        Alcotest.(check bool) "realistic" true (Realism.is_realistic verdict));
    test "counterexample pretty-prints" (fun () ->
        let f1, f2, _ = Marabout.paper_example ~n in
        match Realism.check_suspicions Marabout.canonical ~pairs:[ (f1, f2) ] with
        | Realism.Not_realistic c ->
          let s = Format.asprintf "%a" Realism.pp_counterexample c in
          Alcotest.(check bool) "mentions patterns" true
            (contains_substring ~needle:"patterns agree" s)
        | Realism.Realistic_on_samples _ -> Alcotest.fail "expected refutation");
  ]

let pair_generator_tests =
  [
    qtest ~count:30 "generated pairs share a nontrivial prefix" QCheck.small_int
      (fun seed ->
        pairs ~seed ~count:10
        |> List.for_all (fun (a, b) ->
               match Pattern.divergence_time a b with
               | None -> true (* identical is allowed, vacuous *)
               | Some d -> Time.(d > Time.zero)));
    qtest ~count:30 "identical-prefix check is vacuous on equal patterns"
      QCheck.small_int (fun seed ->
        let f =
          Pattern.Family.generate Pattern.Family.uniform ~n ~horizon
            (Rng.derive ~seed ~salts:[ 3 ])
        in
        Realism.is_realistic (Realism.check_suspicions Marabout.canonical ~pairs:[ (f, f) ]));
  ]

let survey_tests =
  [
    slow_test "hierarchy survey: collapse holds and claims are honest" (fun () ->
        let rows =
          Hierarchy.survey ~n ~horizon:(time 150) ~seed:11 ~samples:15
            (Hierarchy.zoo ~seed:11)
        in
        Alcotest.(check bool) "collapse" true (Hierarchy.collapse_holds rows);
        List.iter
          (fun row ->
            Alcotest.(check bool)
              (Format.asprintf "claim matches verdict for %s" row.Hierarchy.detector)
              row.Hierarchy.claims_realistic
              (Realism.is_realistic row.Hierarchy.realism))
          rows);
    slow_test "every realistic S member in the zoo is in P" (fun () ->
        let rows =
          Hierarchy.survey ~n ~horizon:(time 150) ~seed:13 ~samples:15
            (Hierarchy.zoo ~seed:13)
        in
        List.iter
          (fun row ->
            if
              Realism.is_realistic row.Hierarchy.realism
              && List.mem Classes.Strong row.Hierarchy.classes
            then
              Alcotest.(check bool)
                (row.Hierarchy.detector ^ " should be in P")
                true
                (List.mem Classes.Perfect row.Hierarchy.classes))
          rows);
    slow_test "P< is surveyed as strictly below P" (fun () ->
        let rows =
          Hierarchy.survey ~n ~horizon:(time 150) ~seed:17 ~samples:15
            [ Partial_perfect.canonical ]
        in
        match rows with
        | [ row ] ->
          Alcotest.(check bool) "in P<" true
            (List.mem Classes.Partially_perfect row.Hierarchy.classes);
          Alcotest.(check bool) "not in P" false
            (List.mem Classes.Perfect row.Hierarchy.classes)
        | _ -> Alcotest.fail "one row expected");
  ]

let () =
  Alcotest.run "realism"
    [
      suite "verdicts" verdict_tests;
      suite "paper-example" paper_example_tests;
      suite "pair-generation" pair_generator_tests;
      suite "hierarchy-survey" survey_tests;
    ]
