(* Edge cases and defensive behaviour across the stack. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 4

(* ---------- runner guards ---------- *)

let null_automaton : (unit, int, Detector.suspicions, int) Model.t =
  Model.make ~name:"null"
    ~initial:(fun ~n:_ _ -> ())
    ~step:(fun ~n:_ ~self:_ () _ _ -> Model.no_effects ())

(* a scheduler that only ever lets one chosen process step *)
let evil_scheduler pid_to_step =
  Scheduler.with_name "evil"
    (Scheduler.constrained ~base:(Scheduler.fair ())
       [ { Scheduler.blocks_step = (fun _ q -> not (Pid.equal q pid_to_step));
           blocks_delivery = (fun _ _ -> false) } ])

let runner_guard_tests =
  [
    test "a scheduler cannot step a crashed process" (fun () ->
        (* freeze everyone but p1; crash p1 at t=0: every tick is Idle and
           the run just burns to the horizon with zero steps *)
        let pattern = pattern ~n [ (1, 0) ] in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical
            ~scheduler:(evil_scheduler (pid 1))
            ~horizon:(time 50) null_automaton
        in
        Alcotest.(check int) "no steps" 0 r.Runner.steps;
        Alcotest.(check int) "all idle" 50 r.Runner.idle_ticks);
    test "horizon zero runs nothing" (fun () ->
        let r =
          Runner.run ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~scheduler:(Scheduler.fair ()) ~horizon:Time.zero null_automaton
        in
        Alcotest.(check int) "no steps" 0 r.Runner.steps);
    test "n=1 consensus decides immediately" (fun () ->
        let pattern = Pattern.failure_free ~n:1 in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler:(Scheduler.fair ())
            ~horizon:(time 50)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check int) "one decision" 1 (List.length r.Runner.outputs);
        check_all_hold "solo consensus"
          (Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r));
    test "n=2 consensus with one crash" (fun () ->
        let pattern = pattern ~n:2 [ (1, 0) ] in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler:(Scheduler.fair ())
            ~horizon:(time 500)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Ct_strong.automaton ~proposals)
        in
        check_all_hold "duo"
          (Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r));
  ]

(* ---------- rotating coordinator details ---------- *)

let coordinator_tests =
  [
    test "coordinator rotation wraps around" (fun () ->
        (* coordinator of round r is ((r-1) mod n)+1; reaching round n+1
           re-elects p1.  Crash p1 and p2 momentarily... simpler: crash p1;
           round 1's coordinator is dead, rounds advance, and the decision
           eventually lands via a later coordinator. *)
        let pattern = pattern ~n [ (1, 0) ] in
        let detector = Ev_strong.canonical ~seed:5 ~noise:0.0 in
        let r =
          Runner.run ~pattern ~detector ~scheduler:(Scheduler.fair ())
            ~horizon:(time 4000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Ct_ev_strong.automaton ~proposals)
        in
        check_all_hold "dead first coordinator"
          (Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r));
    test "timestamp locking prevents regressions across rounds" (fun () ->
        (* under a random schedule with a noisy detector, rounds interleave;
           agreement must survive many seeds *)
        List.iter
          (fun seed ->
            let pattern = pattern ~n [ (2, 15) ] in
            let detector = Ev_strong.canonical ~seed ~noise:0.25 in
            let r =
              Runner.run ~pattern ~detector
                ~scheduler:(Scheduler.random ~seed ~lambda_bias:0.3)
                ~horizon:(time 4000)
                ~until:(Runner.stop_when_all_correct_output pattern)
                (Ct_ev_strong.automaton ~proposals)
            in
            check_holds
              (Format.asprintf "agreement seed %d" seed)
              (Properties.uniform_agreement ~equal:Int.equal r);
            check_holds
              (Format.asprintf "validity seed %d" seed)
              (Properties.validity ~proposals ~equal:Int.equal r))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
    test "round counter grows in blocked runs" (fun () ->
        let pattern = pattern ~n [ (1, 5); (2, 5); (3, 5) ] in
        let detector = Ev_strong.canonical ~seed:5 ~noise:0.0 in
        let r =
          Runner.run ~pattern ~detector ~scheduler:(Scheduler.fair ())
            ~horizon:(time 1000) (Ct_ev_strong.automaton ~proposals)
        in
        Pid.Map.iter
          (fun p st ->
            if Pattern.is_alive pattern p (time 100000) then
              Alcotest.(check bool)
                (Format.asprintf "%a cycling" Pid.pp p)
                true
                (Ct_ev_strong.round_of st > 3))
          r.Runner.final_states);
  ]

(* ---------- detector odds and ends ---------- *)

let detector_tests =
  [
    test "Detector.map preserves the realism claim" (fun () ->
        let d = Detector.map ~name:"mapped" (fun s -> Pid.Set.cardinal s) Perfect.canonical in
        Alcotest.(check bool) "claim" true (Detector.claims_realistic d);
        Alcotest.(check int) "maps output" 1
          (Detector.query d (pattern ~n [ (1, 0) ]) (pid 2) (time 5)));
    test "suspects helper" (fun () ->
        let f = pattern ~n [ (3, 7) ] in
        Alcotest.(check bool) "after" true
          (Detector.suspects Perfect.canonical f (pid 1) (time 7) (pid 3));
        Alcotest.(check bool) "before" false
          (Detector.suspects Perfect.canonical f (pid 1) (time 6) (pid 3)));
    test "classify on the empty-suspicion detector in a failure-free world" (fun () ->
        let silent = Detector.make ~name:"silent" ~claims_realistic:true (fun _ _ _ -> Pid.Set.empty) in
        let f = Pattern.failure_free ~n in
        let horizon = time 50 in
        let classes =
          Classes.classify f ~horizon ~window:(Classes.default_window ~horizon)
            (Detector.history silent f)
        in
        (* with nobody crashing, completeness is vacuous: silent is in all *)
        Alcotest.(check int) "all classes" (List.length Classes.all_classes)
          (List.length classes));
    test "all_hold reports the first violation" (fun () ->
        let v = Classes.Violated "boom" in
        Alcotest.(check bool) "violated" false
          (Classes.holds (Classes.all_hold [ Classes.Holds; v; Classes.Holds ])));
  ]

(* ---------- broadcast odds and ends ---------- *)

let broadcast_edge_tests =
  [
    test "urbcast works with a delayed Perfect detector" (fun () ->
        let to_broadcast p = [ Pid.to_int p ] in
        let pattern = pattern ~n [ (1, 8) ] in
        let r =
          Runner.run ~pattern ~detector:(Perfect.delayed ~lag:25)
            ~scheduler:(Scheduler.fair ()) ~horizon:(time 6000)
            (Urbcast.automaton ~to_broadcast)
        in
        check_holds "agreement" (Properties.broadcast_agreement r);
        check_holds "no-dup" (Properties.broadcast_no_duplication r));
    test "abcast with empty workload stays silent" (fun () ->
        let r =
          Runner.run ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~scheduler:(Scheduler.fair ()) ~horizon:(time 400)
            (Abcast.automaton ~to_broadcast:(fun _ -> []))
        in
        Alcotest.(check int) "no deliveries" 0 (List.length r.Runner.outputs);
        Alcotest.(check int) "no messages" 0 r.Runner.sent);
    test "trb value can be delivered even when the sender crashed" (fun () ->
        (* sender crashes after its broadcast step: the value is in flight
           and consensus may legitimately deliver it despite suspicion *)
        let sender = pid 1 in
        let pattern = pattern ~n [ (1, 1) ] in
        let r =
          Runner.run ~pattern ~detector:(Perfect.delayed ~lag:50)
            ~scheduler:(Scheduler.fair ()) ~horizon:(time 6000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Trb.automaton ~sender ~value:99)
        in
        check_all_hold "late suspicion"
          (Properties.trb_check ~sender ~value:99 ~equal:Int.equal r);
        (* with suspicion delayed past the value's arrival, the value wins *)
        List.iter
          (fun (_, _, d) -> Alcotest.(check (option int)) "value" (Some 99) d)
          r.Runner.outputs);
  ]

let () =
  Alcotest.run "edge"
    [
      suite "runner-guards" runner_guard_tests;
      suite "rotating-coordinator" coordinator_tests;
      suite "detector-odds" detector_tests;
      suite "broadcast-odds" broadcast_edge_tests;
    ]
