(* The campaign subsystem: job-space decoding, checkpoint round-trips, and
   the engine's worker-count-independence and resume guarantees. *)

open Helpers
module Spec = Rlfd_campaign.Spec
module Checkpoint = Rlfd_campaign.Checkpoint
module Engine = Rlfd_campaign.Engine
module Json = Rlfd_obs.Json
module Metrics = Rlfd_obs.Metrics

let int_codec =
  {
    Engine.encode = (fun v -> Json.Int v);
    decode =
      (fun j ->
        match Json.to_int_opt j with
        | Some v -> Ok v
        | None -> Error "not an int");
  }

let spec2 () =
  Spec.make ~name:"unit"
    ~axes:[ ("fd", [ "P"; "S" ]); ("sched", [ "fair"; "random"; "chaos" ]) ]
    ~seeds:[ 7; 8 ] ()

(* A deterministic workload whose value encodes everything a job was given,
   so any cross-worker or resume confusion shows up in the result itself. *)
let fingerprint ~rng ~metrics i =
  Metrics.incr metrics "jobs_seen";
  Metrics.observe metrics "draws" (float_of_int (Rlfd_kernel.Rng.int rng 1000));
  (i * 1_000_003) + Rlfd_kernel.Rng.int rng 1_000_000

let run_fingerprint ?workers ?shard_size ?checkpoint ?resume ?codec ~total () =
  Engine.run ?workers ?shard_size ?checkpoint ?resume ?codec
    ~name:"fingerprint" ~seed:2002 ~total ~label:string_of_int fingerprint

let tmp_file name =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists path then Sys.remove path;
  path

(* ---------- Spec ---------- *)

let spec_tests =
  [
    test "size is the product of axis lengths and seeds" (fun () ->
        Alcotest.(check int) "2*3*2" 12 (Spec.size (spec2 ())));
    test "decode covers every combination exactly once" (fun () ->
        let spec = spec2 () in
        let labels = List.map Spec.label (Spec.jobs spec) in
        Alcotest.(check int) "all jobs" 12 (List.length labels);
        Alcotest.(check int) "distinct labels" 12
          (List.length (List.sort_uniq compare labels)));
    test "index round-trips through the decoded job" (fun () ->
        let spec = spec2 () in
        List.iter
          (fun (j : Spec.job) ->
            Alcotest.(check int) "index" j.index (Spec.job spec j.index).index)
          (Spec.jobs spec));
    test "seeds vary fastest, first axis slowest" (fun () ->
        let spec = spec2 () in
        let j0 = Spec.job spec 0 and j1 = Spec.job spec 1 in
        Alcotest.(check int) "seed of job 0" 7 j0.Spec.seed;
        Alcotest.(check int) "seed of job 1" 8 j1.Spec.seed;
        Alcotest.(check string) "job 0 fd" "P" (Spec.value j0 "fd");
        Alcotest.(check string) "last job fd" "S"
          (Spec.value (Spec.job spec 11) "fd"));
    test "label shows coordinates and seed" (fun () ->
        Alcotest.(check string) "label" "P/fair/seed=7"
          (Spec.label (Spec.job (spec2 ()) 0)));
    test "invalid specs are rejected" (fun () ->
        let raises f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        raises (fun () -> Spec.make ~axes:[ ("a", []) ] ~seeds:[ 1 ] ());
        raises (fun () -> Spec.make ~axes:[] ~seeds:[] ());
        raises (fun () ->
            Spec.make ~axes:[ ("a", [ "x" ]); ("a", [ "y" ]) ] ~seeds:[ 1 ] ());
        raises (fun () -> Spec.job (spec2 ()) 12));
  ]

(* ---------- Checkpoint ---------- *)

let checkpoint_tests =
  [
    test "header and entries round-trip" (fun () ->
        let path = tmp_file "rlfd-ck-roundtrip.jsonl" in
        let oc = open_out path in
        Checkpoint.write_header oc
          { Checkpoint.name = "c"; seed = 5; total = 3 };
        Checkpoint.write_entry oc
          { Checkpoint.job = 0; label = "a"; elapsed_s = 0.5; value = Json.Int 1 };
        Checkpoint.write_entry oc
          { Checkpoint.job = 2; label = "b"; elapsed_s = 0.25; value = Json.Int 9 };
        close_out oc;
        (match Checkpoint.load path with
        | Error e -> Alcotest.fail e
        | Ok (h, entries, skipped) ->
          Alcotest.(check string) "name" "c" h.Checkpoint.name;
          Alcotest.(check int) "seed" 5 h.Checkpoint.seed;
          Alcotest.(check int) "total" 3 h.Checkpoint.total;
          Alcotest.(check int) "entries" 2 (List.length entries);
          Alcotest.(check int) "skipped" 0 skipped;
          Alcotest.(check int) "job ids" 2
            (List.length
               (List.filter
                  (fun (e : Checkpoint.entry) -> e.job = 0 || e.job = 2)
                  entries)));
        Sys.remove path);
    test "a torn final line is skipped and counted" (fun () ->
        let path = tmp_file "rlfd-ck-torn.jsonl" in
        let oc = open_out path in
        Checkpoint.write_header oc
          { Checkpoint.name = "c"; seed = 5; total = 3 };
        Checkpoint.write_entry oc
          { Checkpoint.job = 1; label = "a"; elapsed_s = 0.; value = Json.Int 1 };
        output_string oc "{\"job\":2,\"label\":\"torn";
        close_out oc;
        (match Checkpoint.load path with
        | Error e -> Alcotest.fail e
        | Ok (_, entries, skipped) ->
          Alcotest.(check int) "entries" 1 (List.length entries);
          Alcotest.(check int) "skipped" 1 skipped);
        Sys.remove path);
    test "a non-checkpoint file is an error, not a crash" (fun () ->
        let path = tmp_file "rlfd-ck-garbage.jsonl" in
        let oc = open_out path in
        output_string oc "not json at all\n";
        close_out oc;
        (match Checkpoint.load path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected Error");
        Sys.remove path);
  ]

(* ---------- Engine determinism ---------- *)

let report_fingerprint report = Engine.report_lines int_codec report

let engine_tests =
  [
    test "report lines are byte-identical at 1 and 4 workers" (fun () ->
        let serial = run_fingerprint ~workers:1 ~total:23 () in
        let parallel = run_fingerprint ~workers:4 ~total:23 () in
        Alcotest.(check (list string))
          "identical reports" (report_fingerprint serial)
          (report_fingerprint parallel));
    test "shard size does not change the report" (fun () ->
        let a = run_fingerprint ~workers:3 ~shard_size:1 ~total:17 () in
        let b = run_fingerprint ~workers:2 ~shard_size:7 ~total:17 () in
        Alcotest.(check (list string))
          "identical reports" (report_fingerprint a) (report_fingerprint b));
    test "outcomes are sorted and complete" (fun () ->
        let r = run_fingerprint ~workers:4 ~total:11 () in
        Alcotest.(check (list int)) "job order" (List.init 11 Fun.id)
          (List.map (fun o -> o.Engine.job) r.Engine.outcomes));
    test "merged metrics count every job once at any worker count" (fun () ->
        let count workers =
          let r = run_fingerprint ~workers ~total:19 () in
          ( Metrics.counter_value r.Engine.metrics "jobs_seen",
            Metrics.histogram_count r.Engine.metrics "draws" )
        in
        Alcotest.(check (pair int int)) "serial" (19, 19) (count 1);
        Alcotest.(check (pair int int)) "parallel" (19, 19) (count 4));
    test "total = 0 yields an empty report" (fun () ->
        let r = run_fingerprint ~workers:2 ~total:0 () in
        Alcotest.(check int) "outcomes" 0 (List.length r.Engine.outcomes));
    test "more workers than jobs still covers every job" (fun () ->
        let r = run_fingerprint ~workers:8 ~total:3 () in
        Alcotest.(check int) "outcomes" 3 (List.length r.Engine.outcomes));
    test "a job exception surfaces after the pool joins" (fun () ->
        match
          Engine.run ~workers:2 ~name:"boom" ~seed:1 ~total:8
            ~label:string_of_int
            (fun ~rng:_ ~metrics:_ i ->
              if i = 5 then failwith "job 5 exploded" else i)
        with
        | exception Failure msg ->
          Alcotest.(check string) "message" "job 5 exploded" msg
        | _ -> Alcotest.fail "expected Failure");
    test "checkpoint or resume without a codec is rejected" (fun () ->
        match
          Engine.run ~checkpoint:"/tmp/never-written.jsonl" ~name:"x" ~seed:1
            ~total:1 ~label:string_of_int
            (fun ~rng:_ ~metrics:_ i -> i)
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* ---------- Checkpoint / resume through the engine ---------- *)

let resume_tests =
  [
    test "resume after truncation reproduces the uninterrupted report"
      (fun () ->
        let full = run_fingerprint ~workers:2 ~total:14 () in
        let path = tmp_file "rlfd-ck-resume.jsonl" in
        let _ =
          run_fingerprint ~workers:1 ~checkpoint:path ~codec:int_codec
            ~total:14 ()
        in
        (* keep the header + 5 entries, then simulate a kill mid-write *)
        let ic = open_in path in
        let kept = List.init 6 (fun _ -> input_line ic) in
        close_in ic;
        let oc = open_out path in
        List.iter (fun l -> output_string oc l; output_char oc '\n') kept;
        output_string oc "{\"job\":11,\"label\":\"torn";
        close_out oc;
        let resumed =
          run_fingerprint ~workers:3 ~checkpoint:path ~resume:true
            ~codec:int_codec ~total:14 ()
        in
        Alcotest.(check (list string))
          "identical reports" (report_fingerprint full)
          (report_fingerprint resumed);
        Alcotest.(check int) "resumed jobs" 5 resumed.Engine.resumed;
        Alcotest.(check int) "torn line skipped" 1 resumed.Engine.skipped;
        (* the repaired checkpoint holds every job exactly once *)
        (match Checkpoint.load path with
        | Error e -> Alcotest.fail e
        | Ok (_, entries, _) ->
          let ids =
            List.sort compare
              (List.map (fun (e : Checkpoint.entry) -> e.job) entries)
          in
          Alcotest.(check (list int)) "no duplicates" (List.init 14 Fun.id) ids);
        Sys.remove path);
    test "resuming a finished campaign re-runs nothing" (fun () ->
        let path = tmp_file "rlfd-ck-finished.jsonl" in
        let first =
          run_fingerprint ~workers:2 ~checkpoint:path ~codec:int_codec
            ~total:9 ()
        in
        let again =
          run_fingerprint ~workers:2 ~checkpoint:path ~resume:true
            ~codec:int_codec ~total:9 ()
        in
        Alcotest.(check int) "all resumed" 9 again.Engine.resumed;
        Alcotest.(check (list string))
          "identical reports" (report_fingerprint first)
          (report_fingerprint again);
        Sys.remove path);
    test "a mismatched header refuses to resume" (fun () ->
        let path = tmp_file "rlfd-ck-mismatch.jsonl" in
        let _ =
          run_fingerprint ~workers:1 ~checkpoint:path ~codec:int_codec
            ~total:4 ()
        in
        (match
           run_fingerprint ~workers:1 ~checkpoint:path ~resume:true
             ~codec:int_codec ~total:5 ()
         with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected Failure on total mismatch");
        Sys.remove path);
  ]

(* ---------- run_spec ---------- *)

let run_spec_tests =
  [
    test "run_spec hands each job its decoded coordinates" (fun () ->
        let spec = spec2 () in
        let report =
          Engine.run_spec ~workers:2 ~seed:2002 spec
            (fun ~rng:_ ~metrics:_ job -> Spec.label job)
        in
        List.iter
          (fun o ->
            Alcotest.(check string) "label matches value" o.Engine.label
              o.Engine.value)
          report.Engine.outcomes);
  ]

(* ---------- timeline determinism ---------- *)

module Timeline = Rlfd_obs.Timeline

(* The engine's domain-lifecycle records: how many there are depends on the
   pool size, so cross-worker-count comparisons exclude them.  Everything
   else is keyed by deterministic shard/job tags. *)
let lifecycle = [ "spawn-request"; "domain-start"; "domain-exit"; "join" ]

let normalized_run ~workers ~exclude () =
  let tl = Timeline.create ~capacity:65536 ~label:"det" () in
  let (_ : int Engine.report) =
    Engine.run ~workers ~shard_size:2 ~timeline:tl ~name:"fingerprint"
      ~seed:2002 ~total:12 ~label:string_of_int fingerprint
  in
  Json.to_string (Timeline.normalized_json ~exclude (Timeline.merge tl))

let timeline_tests =
  [
    test "normalized artifact is byte-identical across runs (2 workers)"
      (fun () ->
        Alcotest.(check string) "same bytes"
          (normalized_run ~workers:2 ~exclude:[] ())
          (normalized_run ~workers:2 ~exclude:[] ()));
    test
      "normalized artifact is byte-identical across worker counts \
       (lifecycle excluded)" (fun () ->
        let at workers = normalized_run ~workers ~exclude:lifecycle () in
        let one = at 1 in
        Alcotest.(check string) "1 = 2 workers" one (at 2);
        Alcotest.(check string) "1 = 4 workers" one (at 4));
    test "worker spans cover jobs, queue-wait and publish" (fun () ->
        let tl = Timeline.create ~label:"cov" () in
        let path = tmp_file "rlfd-timeline-ckpt.jsonl" in
        let (_ : int Engine.report) =
          Engine.run ~workers:2 ~shard_size:2 ~timeline:tl ~codec:int_codec
            ~checkpoint:path ~name:"fingerprint" ~seed:2002 ~total:12
            ~label:string_of_int fingerprint
        in
        Sys.remove path;
        let a = Timeline.merge tl in
        let count name =
          List.fold_left
            (fun acc (d : Timeline.domain_rec) ->
              acc
              + List.length
                  (List.filter
                     (fun (s : Timeline.span_rec) -> s.sp_name = name)
                     d.dom_spans))
            0 a.Timeline.a_domains
        in
        Alcotest.(check int) "one job span per job" 12 (count "job");
        Alcotest.(check int) "one job-run per shard" 6 (count "job-run");
        Alcotest.(check int) "one queue-wait per shard" 6 (count "queue-wait");
        Alcotest.(check int) "one publish per shard" 6 (count "publish");
        Alcotest.(check int) "one checkpoint-append per shard" 6
          (count "checkpoint-append");
        Alcotest.(check int) "nothing dropped" 0 a.Timeline.a_dropped);
    test "report is unchanged by timeline collection" (fun () ->
        let with_tl =
          let tl = Timeline.create ~label:"x" () in
          Engine.run ~workers:2 ~timeline:tl ~name:"fingerprint" ~seed:2002
            ~total:12 ~label:string_of_int fingerprint
        in
        let without = run_fingerprint ~workers:2 ~total:12 () in
        Alcotest.(check (list int)) "same values"
          (List.map (fun o -> o.Engine.value) without.Engine.outcomes)
          (List.map (fun o -> o.Engine.value) with_tl.Engine.outcomes));
  ]

(* ---------- the persistent pool ---------- *)

module Pool = Rlfd_campaign.Pool

(* Force real helper domains (the 1-core CI container would otherwise cap
   the pool at zero and run everything inline), restore automatic sizing
   afterwards.  Surplus helpers spawned here just park for the rest of
   the process — by design. *)
let with_cap n f =
  Pool.set_max_helpers (Some n);
  Fun.protect ~finally:(fun () -> Pool.set_max_helpers None) f

(* A job whose cost varies per job but depends only on the job's own rng
   stream — the adversarial input for adaptive batching + stealing. *)
let lumpy ~rng ~metrics i =
  Metrics.incr metrics "jobs_seen";
  let spin = Rlfd_kernel.Rng.int rng 2000 in
  let acc = ref (i + 1) in
  for _ = 1 to spin do
    acc := (!acc * 1103515245) + 12345
  done;
  (i * 1_000_003) lxor (!acc land 0xFFFFF)

let pool_tests =
  [
    qtest ~count:8
      "random job costs: reports and checkpoint logs are byte-identical at \
       workers 1/2/4/8"
      QCheck.small_int
      (fun seed ->
        with_cap 3 (fun () ->
            let seed = abs seed in
            let total = 9 + (seed mod 14) in
            let run workers =
              let path =
                tmp_file (Printf.sprintf "rlfd-pool-det-%d.jsonl" workers)
              in
              let r =
                Engine.run ~workers ~checkpoint:path ~codec:int_codec
                  ~name:"pool-det" ~seed ~total ~label:string_of_int lumpy
              in
              (* the checkpoint log is completion-ordered and carries wall
                 times; canonicalize to its order- and timing-free content *)
              let log =
                match Checkpoint.load path with
                | Error e -> Alcotest.fail e
                | Ok (_, entries, _) ->
                  List.sort compare
                    (List.map
                       (fun (e : Checkpoint.entry) ->
                         (e.job, e.label, Json.to_string e.value))
                       entries)
              in
              Sys.remove path;
              (Engine.report_lines int_codec r, log)
            in
            let reference = run 1 in
            List.for_all (fun w -> run w = reference) [ 2; 4; 8 ]));
    test "orphan ranges are drained by steals and counted" (fun () ->
        (* cap 0: the caller is the only participant, so every batch taken
           from worker slots 1..3 must be a steal *)
        with_cap 0 (fun () ->
            let r =
              Engine.run ~workers:4 ~name:"steals" ~seed:5 ~total:12
                ~label:string_of_int lumpy
            in
            Alcotest.(check bool)
              "at least one steal per orphan range" true
              (r.Engine.steals >= 3);
            Alcotest.(check int) "metrics counter agrees" r.Engine.steals
              (Metrics.counter_value r.Engine.metrics "campaign_steals");
            Alcotest.(check (option (float 0.)))
              "single participant" (Some 1.)
              (Metrics.gauge_value r.Engine.metrics "pool_domains");
            Alcotest.(check int) "report agrees" 1 r.Engine.pool_domains));
    test "back-to-back runs reuse the pool: no second spawn" (fun () ->
        with_cap 2 (fun () ->
            let go () =
              Engine.run ~workers:3 ~name:"reuse" ~seed:9 ~total:18
                ~label:string_of_int lumpy
            in
            let first = go () in
            let spawned_after_first = Pool.spawned_total () in
            let second = go () in
            Alcotest.(check int) "warm pool spawns nothing"
              spawned_after_first (Pool.spawned_total ());
            Alcotest.(check (list string))
              "identical reports" (report_fingerprint first)
              (report_fingerprint second)));
    test "resume after truncation is exact under real helpers" (fun () ->
        with_cap 2 (fun () ->
            let full =
              Engine.run ~workers:4 ~name:"pool-resume" ~seed:11 ~total:13
                ~label:string_of_int lumpy
            in
            let path = tmp_file "rlfd-pool-resume.jsonl" in
            let _ =
              Engine.run ~workers:4 ~checkpoint:path ~codec:int_codec
                ~name:"pool-resume" ~seed:11 ~total:13 ~label:string_of_int
                lumpy
            in
            (* keep the header + 4 entries, then simulate a kill mid-write *)
            let ic = open_in path in
            let kept = List.init 5 (fun _ -> input_line ic) in
            close_in ic;
            let oc = open_out path in
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              kept;
            output_string oc "{\"job\":9,\"label\":\"torn";
            close_out oc;
            let resumed =
              Engine.run ~workers:4 ~checkpoint:path ~resume:true
                ~codec:int_codec ~name:"pool-resume" ~seed:11 ~total:13
                ~label:string_of_int lumpy
            in
            Sys.remove path;
            Alcotest.(check int) "recovered entries" 4 resumed.Engine.resumed;
            Alcotest.(check (list string))
              "identical reports" (report_fingerprint full)
              (report_fingerprint resumed)));
    test "adaptive batching keeps the normalized job view identical"
      (fun () ->
        (* no ~shard_size: batch boundaries are timing-dependent, so the
           batch-level spans are excluded and the per-job structure must
           still match exactly across worker counts *)
        with_cap 2 (fun () ->
            let batch_level = [ "job-run"; "queue-wait"; "publish" ] in
            let at workers =
              let tl = Timeline.create ~capacity:65536 ~label:"adet" () in
              let (_ : int Engine.report) =
                Engine.run ~workers ~timeline:tl ~name:"adet" ~seed:3
                  ~total:17 ~label:string_of_int lumpy
              in
              Json.to_string
                (Timeline.normalized_json ~exclude:batch_level
                   (Timeline.merge tl))
            in
            let one = at 1 in
            Alcotest.(check string) "1 = 2 workers" one (at 2);
            Alcotest.(check string) "1 = 4 workers" one (at 4)));
  ]

let () =
  Alcotest.run "campaign"
    [
      suite "spec" spec_tests;
      suite "checkpoint" checkpoint_tests;
      suite "engine" engine_tests;
      suite "resume" resume_tests;
      suite "run-spec" run_spec_tests;
      suite "timeline" timeline_tests;
      suite "pool" pool_tests;
    ]
