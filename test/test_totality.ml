(* EXP-1: Lemma 4.1 - every consensus algorithm using a realistic failure
   detector (in the unbounded-failure environment) is total, and the paper's
   R1/R2/R3 adversarial construction. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 5

let run ?(scheduler = `Fair) detector pattern =
  run_consensus ~scheduler ~detector ~pattern (Ct_strong.automaton ~proposals)

let realistic_detectors =
  [ ("P", Perfect.canonical);
    ("P-delayed", Perfect.delayed ~lag:4);
    ("P-staggered", Perfect.staggered ~seed:12 ~max_lag:5);
    ("S-realistic", Strong.realistic);
    ("Scribe", Scribe.as_suspicions) ]

let totality_tests =
  List.map
    (fun (name, detector) ->
      test (name ^ " makes ct-strong total") (fun () ->
          let patterns =
            [ Pattern.failure_free ~n;
              pattern ~n [ (1, 0) ];
              pattern ~n [ (2, 10); (4, 30) ];
              pattern ~n [ (1, 5); (2, 10); (3, 15); (4, 20) ] ]
          in
          List.iter
            (fun p ->
              let r = run detector p in
              let violations = Totality.check r in
              Alcotest.(check int)
                (Format.asprintf "violations on %a" Pattern.pp p)
                0 (List.length violations))
            patterns))
    realistic_detectors
  @ [
      qtest ~count:40 "total over the sampled environment"
        (arb_pattern ~n ~horizon:150)
        (fun p -> Totality.is_total (run Perfect.canonical p));
      qtest ~count:25 "total under random schedules"
        QCheck.(pair (arb_pattern ~n ~horizon:150) small_int)
        (fun (p, seed) -> Totality.is_total (run ~scheduler:(`Random seed) Perfect.canonical p));
    ]

let non_realistic_tests =
  [
    test "clairvoyant S escapes totality" (fun () ->
        let p = pattern ~n [ (2, 10); (4, 30) ] in
        let r = run Strong.clairvoyant p in
        Alcotest.(check bool) "consensus still correct" true
          (Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r
          |> List.for_all (fun (_, res) -> Classes.holds res));
        Alcotest.(check bool) "violations found" true (Totality.check r <> []));
    test "violation pinpoints the unconsulted processes" (fun () ->
        let p = Pattern.failure_free ~n in
        let r = run Strong.clairvoyant p in
        match Totality.check r with
        | [] -> Alcotest.fail "expected violations"
        | v :: _ ->
          (* the clairvoyant member trusts p1 in a failure-free pattern, so
             deciders consulted only p1 (and themselves): others missing *)
          Alcotest.(check bool) "missing non-empty" false
            (Pid.Set.is_empty v.Totality.missing);
          Alcotest.(check bool) "trusted p1 not missing" false
            (Pid.Set.mem (pid 1) v.Totality.missing));
    test "Marabout consensus is not total" (fun () ->
        let p = pattern ~n [ (1, 3); (2, 6); (3, 9); (4, 12) ] in
        let r =
          run_consensus ~detector:Marabout.canonical ~pattern:p
            (Marabout_consensus.automaton ~proposals)
        in
        Alcotest.(check bool) "not total" false (Totality.is_total r));
    test "violations pretty-print" (fun () ->
        let p = Pattern.failure_free ~n in
        let r = run Strong.clairvoyant p in
        match Totality.check r with
        | v :: _ ->
          let s = Format.asprintf "%a" Totality.pp_violation v in
          Alcotest.(check bool) "mentions decision" true
            (contains_substring ~needle:"decision" s)
        | [] -> Alcotest.fail "expected violations");
  ]

(* The R1/R2/R3 construction from the Lemma 4.1 proof, made concrete:
   if p_j is never consulted, the adversary can crash everyone else right
   after the decision and force p_j to decide alone - possibly differently.
   We exhibit it on the Marabout algorithm (which is non-total): in R3 the
   early decider and the isolated process disagree. *)
let proof_construction_tests =
  [
    test "R3: non-total decision + isolation = disagreement" (fun () ->
        let p1 = pid 1 and p5 = pid 5 in
        (* p1 decides its own value at its first step (Marabout algorithm,
           realistic detector).  p5 is isolated until t=100.  All processes
           except p5 crash at t=50 - after p1's decision.  p5 then decides
           alone. *)
        let pattern =
          Pattern.crash_all_except (Pattern.failure_free ~n) ~keep:p5 ~at:(time 50)
        in
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.isolate p5 ~until:(time 100) ]
        in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 4000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Marabout_consensus.automaton ~proposals)
        in
        (* p1 decided 1001 before crashing; p5, consulted by nobody, decides
           its own 1005: the agreement of the lemma's contradiction. *)
        let decided p =
          Option.map snd (Runner.first_output r p)
        in
        Alcotest.(check (option int)) "p1 decided own" (Some 1001) (decided p1);
        Alcotest.(check (option int)) "p5 decided own" (Some 1005) (decided p5);
        check_violated "uniform agreement broken"
          (Properties.uniform_agreement ~equal:Int.equal r));
    test "the same adversary cannot break the total algorithm" (fun () ->
        let p5 = pid 5 in
        let pattern =
          Pattern.crash_all_except (Pattern.failure_free ~n) ~keep:p5 ~at:(time 50)
        in
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.isolate p5 ~until:(time 100) ]
        in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 6000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Ct_strong.automaton ~proposals)
        in
        (* ct-strong is total: p1..p4 cannot decide without consulting the
           isolated p5, so they crash undecided; only p5 decides, and
           agreement holds trivially but correctly. *)
        check_holds "uniform agreement" (Properties.uniform_agreement ~equal:Int.equal r);
        check_holds "termination" (Properties.termination r);
        check_holds "totality" (if Totality.is_total r then Classes.Holds else Classes.Violated "not total");
        List.iter
          (fun (t, p, _) ->
            Alcotest.(check bool) "only p5 decides" true (Pid.equal p p5);
            Alcotest.(check bool) "no decision before the crashes" true
              Time.(t >= time 50))
          r.Runner.outputs);
  ]

let () =
  Alcotest.run "totality"
    [
      suite "realistic-is-total" totality_tests;
      suite "non-realistic-escapes" non_realistic_tests;
      suite "lemma-4.1-construction" proof_construction_tests;
    ]
