(* The FLP-model executor: buffer, schedulers, runner validity, causal
   tracking, determinism. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Helpers

let n = 4

(* A trivial gossip automaton: p1 broadcasts "hello" once; everyone relays
   the first copy they receive and outputs the hop count. *)
type gossip_state = { sent : bool; relayed : bool }

let gossip =
  Model.make ~name:"gossip"
    ~initial:(fun ~n:_ _ -> { sent = false; relayed = false })
    ~step:(fun ~n ~self st envelope _fd ->
      match envelope with
      | Some { Model.payload = hops; _ } ->
        if st.relayed then Model.no_effects st
        else
          {
            Model.state = { st with relayed = true };
            sends = Model.send_all ~n ~but:self (hops + 1);
            outputs = [ hops ];
          }
      | None ->
        if Pid.equal self (pid 1) && not st.sent then
          {
            Model.state = { st with sent = true };
            sends = Model.send_all ~n ~but:self 1;
            outputs = [];
          }
        else Model.no_effects st)

let run_gossip ?(pattern = Pattern.failure_free ~n) ?(scheduler = Scheduler.fair ())
    ?(horizon = 500) () =
  Runner.run ~pattern ~detector:Perfect.canonical ~scheduler ~horizon:(time horizon)
    gossip

(* ---------- buffer ---------- *)

let buffer_tests =
  [
    test "add/remove roundtrip" (fun () ->
        let b = Buffer.create () in
        let id = Buffer.add b "x" in
        Alcotest.(check (option string)) "found" (Some "x") (Buffer.remove b id);
        Alcotest.(check (option string)) "gone" None (Buffer.remove b id));
    test "pending_for filters by destination, oldest first" (fun () ->
        let b = Buffer.create () in
        let env dst payload = { Model.src = pid 1; dst = pid dst; payload } in
        ignore (Buffer.add b (env 2 "a"));
        ignore (Buffer.add b (env 3 "b"));
        ignore (Buffer.add b (env 2 "c"));
        let pending = Buffer.pending_for b ~dst:(pid 2) ~keep:(fun e -> e.Model.dst) in
        Alcotest.(check (list string)) "ordered" [ "a"; "c" ]
          (List.map (fun (_, e) -> e.Model.payload) pending));
    test "size" (fun () ->
        let b = Buffer.create () in
        ignore (Buffer.add b 1);
        ignore (Buffer.add b 2);
        Alcotest.(check int) "2" 2 (Buffer.size b));
    test "iter in id order" (fun () ->
        let b = Buffer.create () in
        ignore (Buffer.add b "first");
        ignore (Buffer.add b "second");
        let acc = ref [] in
        Buffer.iter b (fun _ v -> acc := v :: !acc);
        Alcotest.(check (list string)) "order" [ "second"; "first" ] !acc);
  ]

(* ---------- schedulers ---------- *)

let scheduler_tests =
  [
    test "fair scheduler steps every correct process" (fun () ->
        let r = run_gossip () in
        List.iter
          (fun p ->
            let steps =
              List.length (List.filter (fun e -> Pid.equal e.Runner.pid p) r.Runner.events)
            in
            Alcotest.(check bool)
              (Format.asprintf "%a stepped" Pid.pp p)
              true (steps > 10))
          (Pid.all ~n));
    test "fair scheduler delivers everything" (fun () ->
        let r = run_gossip () in
        Alcotest.(check int) "all delivered" r.Runner.sent r.Runner.delivered);
    test "gossip reaches everyone" (fun () ->
        let r = run_gossip () in
        (* everyone, p1 included, outputs on its first receipt (p1 hears the
           relays of its own broadcast) *)
        Alcotest.(check int) "four outputs" 4 (List.length r.Runner.outputs));
    test "random scheduler also completes the gossip" (fun () ->
        let r = run_gossip ~scheduler:(Scheduler.random ~seed:77 ~lambda_bias:0.2) () in
        Alcotest.(check int) "four outputs" 4 (List.length r.Runner.outputs));
    test "random scheduler rejects silly bias" (fun () ->
        Alcotest.check_raises "bias"
          (Invalid_argument "Scheduler.random: lambda_bias out of [0,1)") (fun () ->
            ignore (Scheduler.random ~seed:1 ~lambda_bias:1.0)));
    test "crashed processes never step" (fun () ->
        let pattern = pattern ~n [ (2, 30) ] in
        let r = run_gossip ~pattern () in
        List.iter
          (fun e ->
            if Pid.equal e.Runner.pid (pid 2) then
              Alcotest.(check bool) "before crash" true Time.(e.Runner.time < time 30))
          r.Runner.events);
  ]

let constraint_tests =
  [
    test "delay_from holds messages back" (fun () ->
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.delay_from (pid 1) ~until:(time 100) ]
        in
        let r = run_gossip ~scheduler () in
        (* nobody can receive p1's broadcast before t=100 *)
        List.iter
          (fun e ->
            if e.Runner.received = Some (pid 1) then
              Alcotest.(check bool) "after 100" true Time.(e.Runner.time >= time 100))
          r.Runner.events;
        Alcotest.(check int) "still completes" 4 (List.length r.Runner.outputs));
    test "delay_to isolates a receiver" (fun () ->
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.delay_to (pid 3) ~until:(time 200) ]
        in
        let r = run_gossip ~scheduler () in
        let p3_first_recv =
          List.find_opt (fun e -> Pid.equal e.Runner.pid (pid 3) && e.Runner.received <> None)
            r.Runner.events
        in
        match p3_first_recv with
        | Some e -> Alcotest.(check bool) "after 200" true Time.(e.Runner.time >= time 200)
        | None -> Alcotest.fail "p3 never received");
    test "freeze stops a process from stepping" (fun () ->
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.freeze (pid 2) ~until:(time 50) ]
        in
        let r = run_gossip ~scheduler () in
        List.iter
          (fun e ->
            if Pid.equal e.Runner.pid (pid 2) then
              Alcotest.(check bool) "after 50" true Time.(e.Runner.time >= time 50))
          r.Runner.events);
    test "freeze_all_except produces idle ticks when needed" (fun () ->
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.freeze_all_except [] ~until:(time 20) ]
        in
        let r = run_gossip ~scheduler ~horizon:60 () in
        Alcotest.(check bool) "idle ticks happened" true (r.Runner.idle_ticks >= 20));
    test "isolate cuts both directions" (fun () ->
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.isolate (pid 4) ~until:(time 150) ]
        in
        let r = run_gossip ~scheduler () in
        List.iter
          (fun e ->
            if
              Time.(e.Runner.time < time 150)
              && (Pid.equal e.Runner.pid (pid 4) || List.mem (pid 4) e.Runner.sent_to)
            then
              Alcotest.(check bool) "no deliveries involving p4 early" true
                (e.Runner.received = None || not (Pid.equal e.Runner.pid (pid 4))))
          r.Runner.events);
  ]

(* ---------- runner semantics ---------- *)

let runner_tests =
  [
    test "runs are deterministic" (fun () ->
        let a = run_gossip ~scheduler:(Scheduler.random ~seed:5 ~lambda_bias:0.3) () in
        let b = run_gossip ~scheduler:(Scheduler.random ~seed:5 ~lambda_bias:0.3) () in
        Alcotest.(check int) "same steps" a.Runner.steps b.Runner.steps;
        Alcotest.(check int) "same outputs" (List.length a.Runner.outputs)
          (List.length b.Runner.outputs));
    test "until stops the run early" (fun () ->
        let r =
          Runner.run ~pattern:(Pattern.failure_free ~n) ~detector:Perfect.canonical
            ~scheduler:(Scheduler.fair ()) ~horizon:(time 500)
            ~until:(fun outputs -> List.length outputs >= 1)
            gossip
        in
        Alcotest.(check bool) "stopped early" true r.Runner.stopped_early;
        Alcotest.(check bool) "before horizon" true Time.(r.Runner.end_time < time 500));
    test "record_events:false skips the trace" (fun () ->
        let r =
          Runner.run ~record_events:false ~pattern:(Pattern.failure_free ~n)
            ~detector:Perfect.canonical ~scheduler:(Scheduler.fair ())
            ~horizon:(time 200) gossip
        in
        Alcotest.(check int) "no events" 0 (List.length r.Runner.events);
        Alcotest.(check int) "outputs kept" 4 (List.length r.Runner.outputs));
    test "outputs_of and first_output" (fun () ->
        let r = run_gossip () in
        match Runner.first_output r (pid 2) with
        | Some (_, hops) -> Alcotest.(check int) "direct hop" 1 hops
        | None -> Alcotest.fail "p2 should have output");
    test "final states cover all processes" (fun () ->
        let r = run_gossip ~pattern:(pattern ~n [ (3, 10) ]) () in
        Alcotest.(check int) "n states" n (Pid.Map.cardinal r.Runner.final_states));
  ]

(* ---------- causal tracking ---------- *)

let causal_tests =
  [
    test "heard_from starts as self" (fun () ->
        let r = run_gossip () in
        let first = List.hd r.Runner.events in
        Alcotest.(check bool) "self in hf" true
          (Pid.Set.mem first.Runner.pid first.Runner.heard_from));
    test "receivers absorb the sender's causal past" (fun () ->
        let r = run_gossip () in
        List.iter
          (fun e ->
            match e.Runner.received with
            | Some src ->
              Alcotest.(check bool)
                (Format.asprintf "%a heard from %a" Pid.pp e.Runner.pid Pid.pp src)
                true
                (Pid.Set.mem src e.Runner.heard_from)
            | None -> ())
          r.Runner.events);
    test "gossip outputs causally include p1" (fun () ->
        let r = run_gossip () in
        List.iter
          (fun (e : _ Runner.event) ->
            if e.Runner.outputs <> [] then
              Alcotest.(check bool) "p1 in causal chain" true
                (Pid.Set.mem (pid 1) e.Runner.heard_from))
          r.Runner.events);
    test "vector clocks grow along the run" (fun () ->
        let r = run_gossip () in
        let by_pid = Hashtbl.create 8 in
        List.iter
          (fun e ->
            let prev = Option.value ~default:Vclock.empty (Hashtbl.find_opt by_pid e.Runner.pid) in
            Alcotest.(check bool) "monotone" true (Vclock.leq prev e.Runner.vclock);
            Hashtbl.replace by_pid e.Runner.pid e.Runner.vclock)
          r.Runner.events);
    test "own step count matches own vclock component" (fun () ->
        let r = run_gossip () in
        let last_of p =
          List.fold_left
            (fun acc e -> if Pid.equal e.Runner.pid p then Some e else acc)
            None r.Runner.events
        in
        List.iter
          (fun p ->
            match last_of p with
            | None -> ()
            | Some e ->
              let steps =
                List.length
                  (List.filter (fun ev -> Pid.equal ev.Runner.pid p) r.Runner.events)
              in
              Alcotest.(check int)
                (Format.asprintf "%a" Pid.pp p)
                steps
                (Vclock.get e.Runner.vclock p))
          (Pid.all ~n));
  ]

let () =
  Alcotest.run "sim"
    [
      suite "buffer" buffer_tests;
      suite "schedulers" scheduler_tests;
      suite "constraints" constraint_tests;
      suite "runner" runner_tests;
      suite "causal-tracking" causal_tests;
    ]
