(* The implemented-detector bridge: a heartbeat detector recorded on the
   timed network drives the FLP-model consensus. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Rlfd_net
open Helpers

let n = 4

let crash_net = 600

let net_pattern = pattern ~n [ (3, crash_net) ]

let sync = Link.Synchronous { delta = 10 }

let record model style =
  Netsim.run ~n ~pattern:net_pattern ~model ~seed:21 ~horizon:8000
    (Heartbeat.node style)

let perfect_style =
  Heartbeat.Fixed
    { period = 20; timeout = Option.get (Heartbeat.perfect_timeout sync ~period:20) }

let bridge_tests =
  [
    test "scaled pattern divides crash times" (fun () ->
        let r = record sync perfect_style in
        let scaled = Bridge.scaled_pattern ~scale:10 r in
        Alcotest.(check (option int)) "crash at 60" (Some (crash_net / 10))
          (Option.map Time.to_int (Pattern.crash_time scaled (pid 3))));
    test "the recorded detector replays the suspicion timeline" (fun () ->
        let r = record sync perfect_style in
        let d = Bridge.detector_of_run ~scale:1 r in
        let p = Bridge.scaled_pattern ~scale:1 r in
        Alcotest.(check bool) "nothing early" true
          (Pid.Set.is_empty (Detector.query d p (pid 1) (time 100)));
        Alcotest.(check bool) "p3 suspected late" true
          (Pid.Set.mem (pid 3) (Detector.query d p (pid 1) (time 7000))));
    test "a recorded synchronous detector passes the class-P checks" (fun () ->
        let r = record sync perfect_style in
        let d = Bridge.detector_of_run ~scale:1 r in
        let p = Bridge.scaled_pattern ~scale:1 r in
        let horizon = time 7500 in
        let window = Classes.default_window ~horizon in
        check_holds "P member"
          (Classes.member Classes.Perfect p ~horizon ~window (Detector.history d p)));
    test "querying on a different pattern is rejected" (fun () ->
        let r = record sync perfect_style in
        let d = Bridge.detector_of_run r in
        let other = pattern ~n [ (2, 5) ] in
        Alcotest.check_raises "mismatch"
          (Failure "Bridge.detector_of_run: queried on a different pattern than recorded")
          (fun () -> ignore (Detector.query d other (pid 1) (time 0))));
    test "consensus over the implemented detector (end-to-end)" (fun () ->
        (* the full story: a synchronous network implements P by timeouts;
           the recorded P drives the Chandra-Toueg algorithm in the abstract
           model; the consensus spec holds *)
        let r = record sync perfect_style in
        let scale = 5 in
        let d = Bridge.detector_of_run ~scale r in
        let p = Bridge.scaled_pattern ~scale r in
        let result =
          Runner.run ~pattern:p ~detector:d ~scheduler:(Scheduler.fair ())
            ~horizon:(time 1500)
            ~until:(Runner.stop_when_all_correct_output p)
            (Ct_strong.automaton ~proposals)
        in
        check_all_hold "consensus over recorded P"
          (Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal result);
        Alcotest.(check bool) "total, too" true (Totality.is_total result));
    test "a lossy-link recording is NOT Perfect, and consensus may suffer" (fun () ->
        (* the same stack over an asynchronous link: the detector makes
           mistakes; the class checks catch it *)
        let style = Heartbeat.Fixed { period = 20; timeout = 31 } in
        let r =
          record (Link.Asynchronous { mean = 15.; spike_every = 10; spike = 400 }) style
        in
        let d = Bridge.detector_of_run ~scale:1 r in
        let p = Bridge.scaled_pattern ~scale:1 r in
        let horizon = time 7500 in
        let window = Classes.default_window ~horizon in
        check_violated "not P"
          (Classes.strong_accuracy p ~horizon ~window (Detector.history d p)));
  ]

let () = Alcotest.run "bridge" [ suite "net-to-model" bridge_tests ]
