(* Tooling: space-time rendering and the experiment grid API. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Rlfd_core
open Helpers

let n = 4

let spacetime_tests =
  [
    test "renders header, crashes and outputs" (fun () ->
        let pattern = pattern ~n [ (2, 10) ] in
        let r =
          run_consensus ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        let s = Spacetime.render r in
        Alcotest.(check bool) "has p1 column" true (contains_substring ~needle:"p1" s);
        Alcotest.(check bool) "shows a crash" true (contains_substring ~needle:"X" s);
        Alcotest.(check bool) "shows an output" true (contains_substring ~needle:"*" s);
        Alcotest.(check bool) "has legend" true (contains_substring ~needle:"legend" s));
    test "elides long runs" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r =
          run_consensus ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        let s = Spacetime.render ~max_rows:5 r in
        Alcotest.(check bool) "elision marker" true
          (contains_substring ~needle:"more steps elided" s));
    test "pp_output annotates rows" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r =
          run_consensus ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        let s =
          Spacetime.render ~max_rows:500 ~pp_output:Format.pp_print_int r
        in
        Alcotest.(check bool) "decision value shown" true
          (contains_substring ~needle:"1001" s));
  ]

let judge r = Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r

let grid_tests =
  [
    test "P passes the grid everywhere" (fun () ->
        let cells =
          Grid.run ~n ~seeds:[ 1; 2; 3; 4 ]
            ~detectors:[ ("P", Perfect.canonical) ]
            ~environments:[ Environment.unbounded; Environment.majority_correct ]
            ~judge
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check int) "two cells" 2 (List.length cells);
        List.iter
          (fun c ->
            Alcotest.(check (float 1e-9))
              (Format.asprintf "%a" Grid.pp_cell c)
              1.0 (Grid.pass_rate c))
          cells);
    test "the paranoid <>S fails somewhere in the unbounded grid" (fun () ->
        let cells =
          Grid.run ~n ~seeds:(List.init 8 Fun.id)
            ~detectors:[ ("<>S-paranoid", Ev_strong.paranoid ~stabilization:(time 400)) ]
            ~environments:[ Environment.unbounded ]
            ~judge
            (Ct_strong.automaton ~proposals)
        in
        match cells with
        | [ c ] ->
          Alcotest.(check bool)
            (Format.asprintf "%a" Grid.pp_cell c)
            true
            (c.Grid.passes < c.Grid.runs && c.Grid.first_failure <> None)
        | _ -> Alcotest.fail "one cell expected");
    test "to_table renders" (fun () ->
        let cells =
          Grid.run ~n ~seeds:[ 1; 2 ]
            ~detectors:[ ("P", Perfect.canonical) ]
            ~environments:[ Environment.failure_free ]
            ~judge
            (Ct_strong.automaton ~proposals)
        in
        let s = Format.asprintf "%a" Table.pp (Grid.to_table ~title:"grid" cells) in
        Alcotest.(check bool) "has rate" true (contains_substring ~needle:"2/2" s));
    test "grid cells are deterministic" (fun () ->
        let once () =
          Grid.run ~n ~seeds:[ 1; 2; 3 ]
            ~detectors:[ ("P", Perfect.canonical) ]
            ~environments:[ Environment.unbounded ]
            ~judge
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check bool) "same" true (once () = once ()));
  ]

(* explorer witness -> scripted scheduler -> full replayed run *)
let replay_tests =
  [
    test "an explorer witness replays into a real run with the same outputs" (fun () ->
        let n = 3 in
        let proposals p = 10 + Pid.to_int p in
        let pattern = pattern ~n:3 [ (1, 1) ] in
        let report =
          Explore.run ~max_steps:10 ~max_nodes:400_000 ~pattern
            ~detector:Partial_perfect.canonical
            ~check:(Explore.agreement_check ~equal:Int.equal)
            (Rank_consensus.automaton ~proposals)
        in
        match report.Explore.violations with
        | [] -> Alcotest.fail "expected a witness"
        | v :: _ ->
          let r =
            Runner.run ~pattern ~detector:Partial_perfect.canonical
              ~scheduler:(Scheduler.scripted v.Explore.trail)
              ~horizon:(time (List.length v.Explore.trail + 5))
              (Rank_consensus.automaton ~proposals)
          in
          (* the replay reproduces the witness's decisions *)
          let replayed = List.map (fun (_, p, o) -> (p, o)) r.Runner.outputs in
          Alcotest.(check int) "same number of decisions"
            (List.length v.Explore.outputs) (List.length replayed);
          List.iter2
            (fun (p, o) (p', o') ->
              Alcotest.(check bool) "same decider" true (Pid.equal p p');
              Alcotest.(check int) "same value" o o')
            v.Explore.outputs replayed;
          (* and it violates uniform agreement, reproducibly *)
          check_violated "replayed violation"
            (Properties.uniform_agreement ~equal:Int.equal r);
          (* the space-time diagram of the witness renders *)
          let s = Spacetime.render ~pp_output:Format.pp_print_int r in
          Alcotest.(check bool) "renders" true (contains_substring ~needle:"legend" s);
          ignore n);
    test "scripted scheduler goes idle after the script" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical
            ~scheduler:(Scheduler.scripted [ (pid 1, None); (pid 2, None) ])
            ~horizon:(time 10)
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check int) "two steps" 2 r.Runner.steps;
        Alcotest.(check int) "rest idle" 8 r.Runner.idle_ticks);
    test "a prescribed but absent reception degrades to lambda" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical
            ~scheduler:(Scheduler.scripted [ (pid 1, Some (pid 2)) ])
            ~horizon:(time 5)
            (Ct_strong.automaton ~proposals)
        in
        Alcotest.(check int) "one step" 1 r.Runner.steps;
        match r.Runner.events with
        | e :: _ -> Alcotest.(check bool) "lambda" true (e.Runner.received = None)
        | [] -> Alcotest.fail "no events");
  ]

let () =
  Alcotest.run "tools"
    [ suite "spacetime" spacetime_tests; suite "grid" grid_tests;
      suite "witness-replay" replay_tests ]
