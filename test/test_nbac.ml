(* Non-blocking atomic commitment with P (the paper's [8]/[10] lineage). *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 5

let all_yes _ = Nbac.Yes

let one_no p = if Pid.to_int p = 3 then Nbac.No else Nbac.Yes

let run_nbac ?(detector = Perfect.canonical) ?(scheduler = `Fair) ~votes pattern =
  let scheduler =
    match scheduler with
    | `Fair -> Scheduler.fair ()
    | `Random seed -> Scheduler.random ~seed ~lambda_bias:0.3
  in
  Runner.run ~pattern ~detector ~scheduler ~horizon:(time 6000)
    ~until:(Runner.stop_when_all_correct_output pattern)
    (Nbac.automaton ~votes)

let outcomes r = List.map (fun (_, _, o) -> o) r.Rlfd_sim.Runner.outputs

let spec_tests =
  [
    test "unanimous yes, failure-free: commit" (fun () ->
        let r = run_nbac ~votes:all_yes (Pattern.failure_free ~n) in
        check_all_hold "all yes" (Nbac.check ~votes:all_yes r);
        List.iter
          (fun o -> Alcotest.(check bool) "commit" true (o = Nbac.Commit))
          (outcomes r));
    test "one no vote: abort" (fun () ->
        let r = run_nbac ~votes:one_no (Pattern.failure_free ~n) in
        check_all_hold "one no" (Nbac.check ~votes:one_no r);
        List.iter
          (fun o -> Alcotest.(check bool) "abort" true (o = Nbac.Abort))
          (outcomes r));
    test "a crash excuses an abort" (fun () ->
        let r = run_nbac ~votes:all_yes (pattern ~n [ (2, 0) ]) in
        check_all_hold "crash" (Nbac.check ~votes:all_yes r);
        (* p2 voted (locally) yes but crashed before sending: nobody can
           assemble a full ballot box, so the outcome is abort *)
        List.iter
          (fun o -> Alcotest.(check bool) "abort" true (o = Nbac.Abort))
          (outcomes r));
    test "votes racing a crash still decide uniformly" (fun () ->
        let r = run_nbac ~votes:all_yes (pattern ~n [ (1, 2) ]) in
        check_all_hold "race" (Nbac.check ~votes:all_yes r));
    test "unbounded crashes: the lone survivor decides" (fun () ->
        let r = run_nbac ~votes:all_yes (pattern ~n [ (1, 4); (2, 8); (3, 12); (4, 16) ]) in
        check_all_hold "n-1 crashes" (Nbac.check ~votes:all_yes r);
        Alcotest.(check bool) "p5 decided" true
          (Runner.first_output r (pid 5) <> None));
    qtest ~count:30 "spec holds across the environment (all-yes votes)"
      (arb_pattern ~n ~horizon:100)
      (fun pattern ->
        let r = run_nbac ~votes:all_yes pattern in
        Nbac.check ~votes:all_yes r |> List.for_all (fun (_, res) -> Classes.holds res));
    qtest ~count:30 "spec holds across the environment (mixed votes)"
      QCheck.(pair (arb_pattern ~n ~horizon:100) small_int)
      (fun (pattern, vote_seed) ->
        let votes p =
          if Rng.bool (Rng.derive ~seed:vote_seed ~salts:[ Pid.to_int p ]) then Nbac.Yes
          else Nbac.No
        in
        let r = run_nbac ~votes pattern in
        Nbac.check ~votes r |> List.for_all (fun (_, res) -> Classes.holds res));
    qtest ~count:20 "spec holds under random schedules"
      QCheck.(pair (arb_pattern ~n ~horizon:100) small_int)
      (fun (pattern, seed) ->
        let r = run_nbac ~scheduler:(`Random seed) ~votes:all_yes pattern in
        Nbac.check ~votes:all_yes r |> List.for_all (fun (_, res) -> Classes.holds res));
  ]

let adversarial_tests =
  [
    test "slow voter is waited for, not aborted on (strong accuracy)" (fun () ->
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.delay_from (pid 4) ~until:(time 500) ]
        in
        let pattern = Pattern.failure_free ~n in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 8000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Nbac.automaton ~votes:all_yes)
        in
        check_all_hold "slow voter" (Nbac.check ~votes:all_yes r);
        (* with a Perfect detector nobody may invent an excuse: commit *)
        List.iter
          (fun o -> Alcotest.(check bool) "commit" true (o = Nbac.Commit))
          (outcomes r));
    test "decision state accessor" (fun () ->
        let r = run_nbac ~votes:all_yes (Pattern.failure_free ~n) in
        Pid.Map.iter
          (fun p st ->
            Alcotest.(check bool)
              (Format.asprintf "%a" Pid.pp p)
              true
              (Nbac.decision st = Some Nbac.Commit))
          r.Runner.final_states);
  ]

let () =
  Alcotest.run "nbac"
    [ suite "specification" spec_tests; suite "adversarial" adversarial_tests ]
