(* EXP-12: the timed network, heartbeat detector implementations, QoS. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_net
open Helpers

let n = 4

(* ---------- link models ---------- *)

let link_tests =
  [
    qtest "synchronous delays are within (0, delta]" QCheck.small_int (fun seed ->
        let model = Link.Synchronous { delta = 10 } in
        let rng = Rng.make seed in
        List.for_all
          (fun _ ->
            let d = Link.delay model rng ~now:0 in
            d >= 1 && d <= 10 + 1)
          (List.init 100 Fun.id));
    qtest "partially synchronous delays are bounded after gst" QCheck.small_int
      (fun seed ->
        let model = Link.Partially_synchronous { gst = 100; delta = 5; wild_max = 50 } in
        let rng = Rng.make seed in
        List.for_all
          (fun _ -> Link.delay model rng ~now:200 <= 6)
          (List.init 100 Fun.id));
    test "asynchronous delays can spike" (fun () ->
        let model = Link.Asynchronous { mean = 5.; spike_every = 3; spike = 500 } in
        let rng = Rng.make 3 in
        let delays = List.init 200 (fun _ -> Link.delay model rng ~now:0) in
        Alcotest.(check bool) "spikes seen" true (List.exists (fun d -> d > 400) delays));
    test "bound_after_gst" (fun () ->
        Alcotest.(check (option int)) "sync" (Some 7)
          (Link.bound_after_gst (Link.Synchronous { delta = 7 }));
        Alcotest.(check (option int)) "async" None
          (Link.bound_after_gst
             (Link.Asynchronous { mean = 1.; spike_every = 0; spike = 0 })));
  ]

(* ---------- netsim engine ---------- *)

(* ping-pong: p1 sends a token; each receiver forwards to the next pid;
   outputs the hop number. *)
let ring_node : (unit, int, int) Netsim.node =
  let next ~n self = Pid.of_int ((Pid.to_int self mod n) + 1) in
  {
    Netsim.node_name = "ring";
    init =
      (fun ~n ~self ->
        if Pid.to_int self = 1 then ((), [ Netsim.Send (next ~n (Pid.of_int 1), 1) ])
        else ((), []));
    on_message =
      (fun ~n ~self ~now:_ () ~src:_ hops ->
        if hops >= 3 * n then ((), [], [ hops ])
        else ((), [ Netsim.Send (next ~n self, hops + 1) ], [ hops ]));
    on_timer = (fun ~n:_ ~self:_ ~now:_ () ~tag:_ -> ((), [], []));
  }

let netsim_tests =
  [
    test "token circulates deterministically" (fun () ->
        let run () =
          Netsim.run ~n ~pattern:(Pattern.failure_free ~n)
            ~model:(Link.Synchronous { delta = 5 })
            ~seed:4 ~horizon:10_000 ring_node
        in
        let a = run () and b = run () in
        Alcotest.(check int) "same outputs" (List.length a.Netsim.outputs)
          (List.length b.Netsim.outputs);
        Alcotest.(check bool) "token moved" true (List.length a.Netsim.outputs >= (3 * n)));
    test "crash stops the token" (fun () ->
        let pattern = pattern ~n [ (2, 1) ] in
        let r =
          Netsim.run ~n ~pattern ~model:(Link.Synchronous { delta = 5 }) ~seed:4
            ~horizon:10_000 ring_node
        in
        (* p2 crashes before the token reaches it: the hop count stalls *)
        Alcotest.(check bool) "few outputs" true (List.length r.Netsim.outputs <= 1));
    test "timers fire and reschedule" (fun () ->
        let counter_node : (int, unit, int) Netsim.node =
          {
            Netsim.node_name = "counter";
            init = (fun ~n:_ ~self:_ -> (0, [ Netsim.Set_timer { delay = 10; tag = 0 } ]));
            on_message = (fun ~n:_ ~self:_ ~now:_ st ~src:_ () -> (st, [], []));
            on_timer =
              (fun ~n:_ ~self:_ ~now:_ st ~tag:_ ->
                (st + 1, [ Netsim.Set_timer { delay = 10; tag = 0 } ], [ st + 1 ]));
          }
        in
        let r =
          Netsim.run ~n:1 ~pattern:(Pattern.failure_free ~n:1)
            ~model:(Link.Synchronous { delta = 1 })
            ~seed:1 ~horizon:105 counter_node
        in
        Alcotest.(check int) "ten ticks" 10 (List.length r.Netsim.outputs));
    test "halt silences a node" (fun () ->
        let suicidal : (unit, unit, int) Netsim.node =
          {
            Netsim.node_name = "suicidal";
            init = (fun ~n:_ ~self:_ -> ((), [ Netsim.Set_timer { delay = 5; tag = 0 } ]));
            on_message = (fun ~n:_ ~self:_ ~now:_ () ~src:_ () -> ((), [], []));
            on_timer =
              (fun ~n:_ ~self ~now:_ () ~tag:_ ->
                if Pid.to_int self = 1 then
                  ((), [ Netsim.Halt; Netsim.Set_timer { delay = 5; tag = 0 } ], [ 0 ])
                else ((), [ Netsim.Set_timer { delay = 5; tag = 0 } ], [ 0 ]));
          }
        in
        let r =
          Netsim.run ~n:2 ~pattern:(Pattern.failure_free ~n:2)
            ~model:(Link.Synchronous { delta = 1 })
            ~seed:1 ~horizon:100 suicidal
        in
        let p1_outputs = List.length (Netsim.outputs_of r (Pid.of_int 1)) in
        let p2_outputs = List.length (Netsim.outputs_of r (Pid.of_int 2)) in
        Alcotest.(check int) "p1 output once then halted" 1 p1_outputs;
        Alcotest.(check bool) "p2 kept going" true (p2_outputs > 10);
        Alcotest.(check int) "halt recorded" 1 (List.length r.Netsim.halted));
    test "until stops the simulation" (fun () ->
        let r =
          Netsim.run
            ~until:(fun outputs -> List.length outputs >= 2)
            ~n ~pattern:(Pattern.failure_free ~n)
            ~model:(Link.Synchronous { delta = 5 })
            ~seed:4 ~horizon:10_000 ring_node
        in
        Alcotest.(check bool) "stopped early" true (List.length r.Netsim.outputs <= 3));
  ]

(* ---------- heartbeat QoS ---------- *)

let crashpat = pattern ~n [ (3, 700) ]

let run_hb model style =
  Netsim.run ~n ~pattern:crashpat ~model ~seed:42 ~horizon:3000 (Heartbeat.node style)

let heartbeat_tests =
  [
    test "synchronous + safe timeout = Perfect grade" (fun () ->
        let model = Link.Synchronous { delta = 10 } in
        let timeout = Option.get (Heartbeat.perfect_timeout model ~period:20) in
        let report = Qos.analyze (run_hb model (Heartbeat.Fixed { period = 20; timeout })) in
        Alcotest.(check bool) "complete" true report.Qos.complete;
        Alcotest.(check bool) "accurate" true report.Qos.accurate;
        Alcotest.(check bool) "perfect grade" true (Qos.perfect_grade report));
    test "detection latency is bounded by timeout + period" (fun () ->
        let model = Link.Synchronous { delta = 10 } in
        let timeout = Option.get (Heartbeat.perfect_timeout model ~period:20) in
        let report = Qos.analyze (run_hb model (Heartbeat.Fixed { period = 20; timeout })) in
        List.iter
          (fun latency ->
            Alcotest.(check bool)
              (Format.asprintf "latency %.0f bounded" latency)
              true
              (latency <= float_of_int (timeout + 20 + 1)))
          report.Qos.detection_latencies);
    test "partial synchrony breaks the fixed timeout (false suspicions)" (fun () ->
        let model = Link.Partially_synchronous { gst = 1000; delta = 10; wild_max = 120 } in
        let report = Qos.analyze (run_hb model (Heartbeat.Fixed { period = 20; timeout = 31 })) in
        Alcotest.(check bool) "not accurate" false report.Qos.accurate;
        Alcotest.(check bool) "still complete" true report.Qos.complete);
    test "adaptive timeouts reduce mistakes" (fun () ->
        let model = Link.Partially_synchronous { gst = 1000; delta = 10; wild_max = 120 } in
        let fixed = Qos.analyze (run_hb model (Heartbeat.Fixed { period = 20; timeout = 31 })) in
        let adaptive =
          Qos.analyze
            (run_hb model (Heartbeat.Adaptive { period = 20; initial_timeout = 31; backoff = 30 }))
        in
        Alcotest.(check bool)
          (Format.asprintf "adaptive %d < fixed %d" adaptive.Qos.false_episodes
             fixed.Qos.false_episodes)
          true
          (adaptive.Qos.false_episodes < fixed.Qos.false_episodes));
    test "adaptive detector is eventually accurate (no mistakes after GST settles)" (fun () ->
        let gst = 800 in
        let model = Link.Partially_synchronous { gst; delta = 10; wild_max = 120 } in
        let r =
          Netsim.run ~n ~pattern:(Pattern.failure_free ~n) ~model ~seed:17 ~horizon:6000
            (Heartbeat.node (Heartbeat.Adaptive { period = 20; initial_timeout = 31; backoff = 40 }))
        in
        (* after some settling period past gst, no correct process should be
           suspected any more *)
        let settle = gst + 2000 in
        List.iter
          (fun observer ->
            List.iter
              (fun subject ->
                if not (Pid.equal observer subject) then begin
                  let intervals = Qos.suspicion_intervals r ~observer ~subject in
                  List.iter
                    (fun (start, _) ->
                      Alcotest.(check bool)
                        (Format.asprintf "suspicion at %d before settle" start)
                        true (start < settle))
                    intervals
                end)
              (Pid.all ~n))
          (Pid.all ~n));
    test "no timeout is Perfect on asynchronous links" (fun () ->
        let model = Link.Asynchronous { mean = 15.; spike_every = 15; spike = 400 } in
        Alcotest.(check (option int)) "no perfect timeout" None
          (Heartbeat.perfect_timeout model ~period:20);
        let report = Qos.analyze (run_hb model (Heartbeat.Fixed { period = 20; timeout = 60 })) in
        Alcotest.(check bool) "mistakes happen" false report.Qos.accurate);
    test "suspicion intervals reconstruct the timeline" (fun () ->
        let model = Link.Synchronous { delta = 10 } in
        let timeout = Option.get (Heartbeat.perfect_timeout model ~period:20) in
        let r = run_hb model (Heartbeat.Fixed { period = 20; timeout }) in
        let observer = Pid.of_int 1 and subject = Pid.of_int 3 in
        match Qos.suspicion_intervals r ~observer ~subject with
        | [ (start, None) ] ->
          Alcotest.(check bool) "starts after the crash" true (start >= 700)
        | other ->
          Alcotest.failf "expected one open interval, got %d" (List.length other));
  ]

(* ---------- monitoring topologies ---------- *)

let all_topos = [ Topology.All_to_all; Topology.ring ~k:2; Topology.Hierarchical ]

let topology_tests =
  [
    test "watches and watchers are inverse relations" (fun () ->
        List.iter
          (fun topo ->
            List.iter
              (fun n ->
                List.iter
                  (fun p ->
                    List.iter
                      (fun q ->
                        let forward = List.mem q (Topology.watches topo ~n p) in
                        let backward = List.mem p (Topology.watchers topo ~n q) in
                        Alcotest.(check bool)
                          (Format.asprintf "%s n=%d %a->%a" (Topology.name topo)
                             n Pid.pp p Pid.pp q)
                          forward backward)
                      (Pid.all ~n))
                  (Pid.all ~n))
              [ 1; 2; 3; 5; 8; 11; 16 ])
          all_topos);
    test "hierarchical graph is symmetric" (fun () ->
        List.iter
          (fun n ->
            List.iter
              (fun p ->
                Alcotest.(check (list int))
                  (Format.asprintf "n=%d %a" n Pid.pp p)
                  (List.map Pid.to_int (Topology.watches Topology.Hierarchical ~n p))
                  (List.map Pid.to_int (Topology.watchers Topology.Hierarchical ~n p)))
              (Pid.all ~n))
          [ 2; 3; 7; 8; 13; 16 ]);
    test "every topology's monitoring graph is connected" (fun () ->
        List.iter
          (fun topo ->
            List.iter
              (fun n ->
                (* BFS along undirected monitoring edges from p1 *)
                let reached = Hashtbl.create 16 in
                let rec bfs = function
                  | [] -> ()
                  | p :: rest ->
                    if Hashtbl.mem reached p then bfs rest
                    else begin
                      Hashtbl.add reached p ();
                      bfs (Topology.neighbours topo ~n p @ rest)
                    end
                in
                bfs [ Pid.of_int 1 ];
                Alcotest.(check int)
                  (Format.asprintf "%s n=%d" (Topology.name topo) n)
                  n (Hashtbl.length reached))
              [ 1; 2; 3; 6; 9; 16; 33 ])
          all_topos);
    test "degrees: n-1, min k (n-1), ceil(log2 n)" (fun () ->
        Alcotest.(check int) "all n=10" 9 (Topology.degree Topology.All_to_all ~n:10);
        Alcotest.(check int) "ring2 n=10" 2 (Topology.degree (Topology.ring ~k:2) ~n:10);
        Alcotest.(check int) "ring5 n=4" 3 (Topology.degree (Topology.ring ~k:5) ~n:4);
        Alcotest.(check int) "hier n=2" 1 (Topology.degree Topology.Hierarchical ~n:2);
        Alcotest.(check int) "hier n=9" 4 (Topology.degree Topology.Hierarchical ~n:9);
        Alcotest.(check int) "hier n=1024" 10
          (Topology.degree Topology.Hierarchical ~n:1024);
        List.iter
          (fun n ->
            let max_watched =
              List.fold_left
                (fun acc p ->
                  Stdlib.max acc
                    (List.length (Topology.watches Topology.Hierarchical ~n p)))
                0 (Pid.all ~n)
            in
            Alcotest.(check int)
              (Format.asprintf "hier degree matches watches n=%d" n)
              max_watched
              (Topology.degree Topology.Hierarchical ~n))
          [ 2; 5; 8; 16; 31 ]);
    test "name/of_string round-trip" (fun () ->
        List.iter
          (fun topo ->
            match Topology.of_string (Topology.name topo) with
            | Ok t ->
              Alcotest.(check bool) (Topology.name topo) true (Topology.equal t topo)
            | Error e -> Alcotest.failf "of_string failed: %s" e)
          all_topos;
        Alcotest.(check bool) "garbage rejected" true
          (Result.is_error (Topology.of_string "torus")));
  ]

(* ---------- partitions ---------- *)

let partition_tests =
  let sync = Link.Synchronous { delta = 10 } in
  let island = Pid.Set.singleton (Pid.of_int 1) in
  let cut = Partition.make ~starts:500 ~heals:900 ~island in
  [
    test "separated: only cross-cut pairs while active" (fun () ->
        let p = Pid.of_int in
        let sep a b ~at = Partition.separated [ cut ] (p a) (p b) ~at in
        Alcotest.(check bool) "cross-cut during" true (sep 1 2 ~at:500);
        Alcotest.(check bool) "symmetric" true (sep 2 1 ~at:700);
        Alcotest.(check bool) "intra-majority" false (sep 2 3 ~at:700);
        Alcotest.(check bool) "before starts" false (sep 1 2 ~at:499);
        Alcotest.(check bool) "heals is exclusive" false (sep 1 2 ~at:900);
        Alcotest.(check bool) "empty schedule" false
          (Partition.separated [] (p 1) (p 2) ~at:700));
    test "cross-cut messages drop; intra-side delivery is untouched" (fun () ->
        let mem = Rlfd_obs.Trace.memory () in
        let registry = Rlfd_obs.Metrics.create () in
        let style = Heartbeat.Fixed { period = 20; timeout = 31 } in
        let _ =
          Netsim.run ~partitions:[ cut ] ~sink:mem ~metrics:registry ~n
            ~pattern:(Pattern.failure_free ~n) ~model:sync ~seed:11 ~horizon:2000
            (Heartbeat.node style)
        in
        let drops, delivers =
          List.fold_left
            (fun (d, dv) -> function
              | Rlfd_obs.Trace.Drop { time; src; dst } -> ((time, src, dst) :: d, dv)
              | Rlfd_obs.Trace.Deliver { time; src; dst } ->
                (d, (time, src, dst) :: dv)
              | _ -> (d, dv))
            ([], []) (Rlfd_obs.Trace.contents mem)
        in
        Alcotest.(check bool) "some drops" true (drops <> []);
        (* the link model is loss-free, so every drop is the partition's *)
        List.iter
          (fun (t, src, dst) ->
            Alcotest.(check bool)
              (Format.asprintf "drop %d->%d@%d crosses the active cut" src dst t)
              true
              (Partition.separated [ cut ] (Pid.of_int src) (Pid.of_int dst)
                 ~at:t))
          drops;
        Alcotest.(check bool) "majority side still talks during the cut" true
          (List.exists
             (fun (t, src, dst) -> t >= 540 && t < 900 && src >= 2 && dst >= 2)
             delivers);
        Alcotest.(check int) "counter matches the event stream"
          (List.length drops)
          (Rlfd_obs.Metrics.counter_value registry "messages_dropped_partition"));
    test "partition suspicions heal: no permanent false suspicion" (fun () ->
        let style = Heartbeat.Fixed { period = 20; timeout = 31 } in
        let r =
          Netsim.run ~partitions:[ cut ] ~n ~pattern:(Pattern.failure_free ~n)
            ~model:sync ~seed:11 ~horizon:2000 (Heartbeat.node style)
        in
        let report = Qos.analyze ~partitions:[ cut ] r in
        Alcotest.(check bool) "mistakes happened" true (report.Qos.false_episodes > 0);
        Alcotest.(check int) "every mistake is partition-induced"
          report.Qos.false_episodes report.Qos.partition_episodes;
        (* each side falsely suspects the other only while cut off: every
           suspicion interval closes soon after the heal *)
        List.iter
          (fun observer ->
            List.iter
              (fun subject ->
                if not (Pid.equal observer subject) then
                  List.iter
                    (fun (start, stop) ->
                      match stop with
                      | Some stop ->
                        Alcotest.(check bool)
                          (Format.asprintf "%a>%a [%d,%d) closes post-heal"
                             Pid.pp observer Pid.pp subject start stop)
                          true
                          (stop <= 900 + 31 + 20 + 10 + 1)
                      | None ->
                        Alcotest.failf "%a suspects %a forever (start %d)"
                          Pid.pp observer Pid.pp subject start)
                    (Qos.suspicion_intervals r ~observer ~subject))
              (Pid.all ~n))
          (Pid.all ~n));
    test "without ~partitions the same mistakes are not excused" (fun () ->
        let style = Heartbeat.Fixed { period = 20; timeout = 31 } in
        let r =
          Netsim.run ~partitions:[ cut ] ~n ~pattern:(Pattern.failure_free ~n)
            ~model:sync ~seed:11 ~horizon:2000 (Heartbeat.node style)
        in
        let blamed = Qos.analyze r in
        Alcotest.(check int) "no partition classification" 0
          blamed.Qos.partition_episodes;
        Alcotest.(check bool) "episodes still counted" true
          (blamed.Qos.false_episodes > 0));
    test "healed run detects a real crash afterwards" (fun () ->
        let style = Heartbeat.Fixed { period = 20; timeout = 31 } in
        let r =
          Netsim.run ~partitions:[ cut ] ~n
            ~pattern:(pattern ~n [ (3, 1400) ])
            ~model:sync ~seed:11 ~horizon:3000 (Heartbeat.node style)
        in
        let report = Qos.analyze ~partitions:[ cut ] r in
        Alcotest.(check bool) "complete despite the earlier cut" true
          report.Qos.complete);
  ]

(* ---------- ping-ack and the detector zoo ---------- *)

let run_spec ?(partitions = []) ~pattern ~model ~seed ~horizon spec =
  let (Detector_impl.Sim r) =
    Detector_impl.simulate ~partitions ~n ~pattern ~model ~seed ~horizon spec
  in
  Qos.analyze ~partitions r

let pingack_spec ?(topology = Topology.All_to_all) ?backoff ~timeout () =
  { Detector_impl.impl = `Pingack; topology; period = 20; timeout;
    backoff; retries = 1 }

let pingack_tests =
  [
    test "synchronous + perfect round-trip timeout = Perfect grade" (fun () ->
        let model = Link.Synchronous { delta = 10 } in
        let timeout = Option.get (Pingack.perfect_timeout model ~period:20) in
        Alcotest.(check int) "2*delta + period + 1" 41 timeout;
        let report =
          run_spec ~pattern:crashpat ~model ~seed:42 ~horizon:3000
            (pingack_spec ~timeout ())
        in
        Alcotest.(check bool) "perfect grade" true (Qos.perfect_grade report));
    test "one-way heartbeat timeout is too tight for a round trip" (fun () ->
        let model = Link.Synchronous { delta = 10 } in
        let hb = Option.get (Heartbeat.perfect_timeout model ~period:20) in
        let report =
          run_spec ~pattern:(Pattern.failure_free ~n) ~model ~seed:42
            ~horizon:3000
            (pingack_spec ~timeout:hb ())
        in
        Alcotest.(check bool) "false suspicions" false report.Qos.accurate);
    test "retries mask isolated pong losses" (fun () ->
        let model = Link.lossy ~drop:0.1 (Link.Synchronous { delta = 10 }) in
        let qos retries =
          let spec = { (pingack_spec ~timeout:41 ()) with Detector_impl.retries } in
          run_spec ~pattern:(Pattern.failure_free ~n) ~model ~seed:42
            ~horizon:3000 spec
        in
        let without = qos 0 and with_retry = qos 2 in
        Alcotest.(check bool)
          (Format.asprintf "retries %d < %d" with_retry.Qos.false_episodes
             without.Qos.false_episodes)
          true
          (with_retry.Qos.false_episodes < without.Qos.false_episodes));
    test "adaptive ping-ack cuts mistakes on partially synchronous links"
      (fun () ->
        let model =
          Link.Partially_synchronous { gst = 1000; delta = 10; wild_max = 120 }
        in
        let qos backoff =
          run_spec ~pattern:crashpat ~model ~seed:42 ~horizon:3000
            (pingack_spec ?backoff ~timeout:41 ())
        in
        let fixed = qos None and adaptive = qos (Some 30) in
        Alcotest.(check bool) "both complete" true
          (fixed.Qos.complete && adaptive.Qos.complete);
        Alcotest.(check bool)
          (Format.asprintf "adaptive %d < fixed %d" adaptive.Qos.false_episodes
             fixed.Qos.false_episodes)
          true
          (adaptive.Qos.false_episodes < fixed.Qos.false_episodes));
    test "every zoo member is complete on synchronous links" (fun () ->
        let model = Link.Synchronous { delta = 10 } in
        List.iter
          (fun impl ->
            List.iter
              (fun topology ->
                let timeout =
                  match impl with `Heartbeat -> 31 | `Pingack -> 41
                in
                let spec =
                  { Detector_impl.impl; topology; period = 20; timeout;
                    backoff = None; retries = 1 }
                in
                let report =
                  run_spec ~pattern:crashpat ~model ~seed:42 ~horizon:3000 spec
                in
                Alcotest.(check bool)
                  (Detector_impl.describe spec ^ " complete")
                  true report.Qos.complete;
                Alcotest.(check bool)
                  (Detector_impl.describe spec ^ " accurate")
                  true report.Qos.accurate)
              all_topos)
          [ `Heartbeat; `Pingack ]);
    test "sparse topologies detect within a dissemination diameter" (fun () ->
        let model = Link.Synchronous { delta = 10 } in
        let n = 16 in
        let report =
          let (Detector_impl.Sim r) =
            Detector_impl.simulate ~n
              ~pattern:(Helpers.pattern ~n [ (3, 700) ])
              ~model ~seed:42 ~horizon:3000
              (pingack_spec ~topology:Topology.Hierarchical ~timeout:41 ())
          in
          Qos.analyze r
        in
        Alcotest.(check bool) "complete" true report.Qos.complete;
        Alcotest.(check bool) "accurate" true report.Qos.accurate;
        (* direct detection needs period + timeout; every further observer
           at most degree more hops of delta each *)
        let diameter = Topology.degree Topology.Hierarchical ~n in
        let bound = float_of_int (20 + 41 + 1 + (diameter * 11)) in
        List.iter
          (fun l ->
            Alcotest.(check bool)
              (Format.asprintf "latency %.0f <= %.0f" l bound)
              true (l <= bound))
          report.Qos.detection_latencies);
  ]

(* ---------- perfect_timeout across link models (regression) ---------- *)

let perfect_timeout_tests =
  let psync = Link.Partially_synchronous { gst = 1000; delta = 10; wild_max = 120 } in
  let async = Link.Asynchronous { mean = 15.; spike_every = 15; spike = 400 } in
  let sync = Link.Synchronous { delta = 10 } in
  [
    test "heartbeat: Some only when delays are bounded from the start" (fun () ->
        Alcotest.(check (option int)) "sync" (Some 31)
          (Heartbeat.perfect_timeout sync ~period:20);
        Alcotest.(check (option int)) "psync has unbounded pre-gst delays" None
          (Heartbeat.perfect_timeout psync ~period:20);
        Alcotest.(check (option int)) "async" None
          (Heartbeat.perfect_timeout async ~period:20);
        Alcotest.(check (option int)) "lossy sync can drop every beat" None
          (Heartbeat.perfect_timeout (Link.lossy ~drop:0.01 sync) ~period:20));
    test "pingack agrees on when a perfect timeout exists" (fun () ->
        Alcotest.(check (option int)) "sync round trip" (Some 41)
          (Pingack.perfect_timeout sync ~period:20);
        Alcotest.(check (option int)) "psync" None
          (Pingack.perfect_timeout psync ~period:20);
        Alcotest.(check (option int)) "lossy" None
          (Pingack.perfect_timeout (Link.lossy ~drop:0.5 sync) ~period:20));
  ]

let () =
  Alcotest.run "net"
    [
      suite "links" link_tests;
      suite "netsim" netsim_tests;
      suite "heartbeat-qos" heartbeat_tests;
      suite "topology" topology_tests;
      suite "partition" partition_tests;
      suite "pingack" pingack_tests;
      suite "perfect-timeout" perfect_timeout_tests;
    ]
