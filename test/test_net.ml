(* EXP-12: the timed network, heartbeat detector implementations, QoS. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_net
open Helpers

let n = 4

(* ---------- link models ---------- *)

let link_tests =
  [
    qtest "synchronous delays are within (0, delta]" QCheck.small_int (fun seed ->
        let model = Link.Synchronous { delta = 10 } in
        let rng = Rng.make seed in
        List.for_all
          (fun _ ->
            let d = Link.delay model rng ~now:0 in
            d >= 1 && d <= 10 + 1)
          (List.init 100 Fun.id));
    qtest "partially synchronous delays are bounded after gst" QCheck.small_int
      (fun seed ->
        let model = Link.Partially_synchronous { gst = 100; delta = 5; wild_max = 50 } in
        let rng = Rng.make seed in
        List.for_all
          (fun _ -> Link.delay model rng ~now:200 <= 6)
          (List.init 100 Fun.id));
    test "asynchronous delays can spike" (fun () ->
        let model = Link.Asynchronous { mean = 5.; spike_every = 3; spike = 500 } in
        let rng = Rng.make 3 in
        let delays = List.init 200 (fun _ -> Link.delay model rng ~now:0) in
        Alcotest.(check bool) "spikes seen" true (List.exists (fun d -> d > 400) delays));
    test "bound_after_gst" (fun () ->
        Alcotest.(check (option int)) "sync" (Some 7)
          (Link.bound_after_gst (Link.Synchronous { delta = 7 }));
        Alcotest.(check (option int)) "async" None
          (Link.bound_after_gst
             (Link.Asynchronous { mean = 1.; spike_every = 0; spike = 0 })));
  ]

(* ---------- netsim engine ---------- *)

(* ping-pong: p1 sends a token; each receiver forwards to the next pid;
   outputs the hop number. *)
let ring_node : (unit, int, int) Netsim.node =
  let next ~n self = Pid.of_int ((Pid.to_int self mod n) + 1) in
  {
    Netsim.node_name = "ring";
    init =
      (fun ~n ~self ->
        if Pid.to_int self = 1 then ((), [ Netsim.Send (next ~n (Pid.of_int 1), 1) ])
        else ((), []));
    on_message =
      (fun ~n ~self ~now:_ () ~src:_ hops ->
        if hops >= 3 * n then ((), [], [ hops ])
        else ((), [ Netsim.Send (next ~n self, hops + 1) ], [ hops ]));
    on_timer = (fun ~n:_ ~self:_ ~now:_ () ~tag:_ -> ((), [], []));
  }

let netsim_tests =
  [
    test "token circulates deterministically" (fun () ->
        let run () =
          Netsim.run ~n ~pattern:(Pattern.failure_free ~n)
            ~model:(Link.Synchronous { delta = 5 })
            ~seed:4 ~horizon:10_000 ring_node
        in
        let a = run () and b = run () in
        Alcotest.(check int) "same outputs" (List.length a.Netsim.outputs)
          (List.length b.Netsim.outputs);
        Alcotest.(check bool) "token moved" true (List.length a.Netsim.outputs >= (3 * n)));
    test "crash stops the token" (fun () ->
        let pattern = pattern ~n [ (2, 1) ] in
        let r =
          Netsim.run ~n ~pattern ~model:(Link.Synchronous { delta = 5 }) ~seed:4
            ~horizon:10_000 ring_node
        in
        (* p2 crashes before the token reaches it: the hop count stalls *)
        Alcotest.(check bool) "few outputs" true (List.length r.Netsim.outputs <= 1));
    test "timers fire and reschedule" (fun () ->
        let counter_node : (int, unit, int) Netsim.node =
          {
            Netsim.node_name = "counter";
            init = (fun ~n:_ ~self:_ -> (0, [ Netsim.Set_timer { delay = 10; tag = 0 } ]));
            on_message = (fun ~n:_ ~self:_ ~now:_ st ~src:_ () -> (st, [], []));
            on_timer =
              (fun ~n:_ ~self:_ ~now:_ st ~tag:_ ->
                (st + 1, [ Netsim.Set_timer { delay = 10; tag = 0 } ], [ st + 1 ]));
          }
        in
        let r =
          Netsim.run ~n:1 ~pattern:(Pattern.failure_free ~n:1)
            ~model:(Link.Synchronous { delta = 1 })
            ~seed:1 ~horizon:105 counter_node
        in
        Alcotest.(check int) "ten ticks" 10 (List.length r.Netsim.outputs));
    test "halt silences a node" (fun () ->
        let suicidal : (unit, unit, int) Netsim.node =
          {
            Netsim.node_name = "suicidal";
            init = (fun ~n:_ ~self:_ -> ((), [ Netsim.Set_timer { delay = 5; tag = 0 } ]));
            on_message = (fun ~n:_ ~self:_ ~now:_ () ~src:_ () -> ((), [], []));
            on_timer =
              (fun ~n:_ ~self ~now:_ () ~tag:_ ->
                if Pid.to_int self = 1 then
                  ((), [ Netsim.Halt; Netsim.Set_timer { delay = 5; tag = 0 } ], [ 0 ])
                else ((), [ Netsim.Set_timer { delay = 5; tag = 0 } ], [ 0 ]));
          }
        in
        let r =
          Netsim.run ~n:2 ~pattern:(Pattern.failure_free ~n:2)
            ~model:(Link.Synchronous { delta = 1 })
            ~seed:1 ~horizon:100 suicidal
        in
        let p1_outputs = List.length (Netsim.outputs_of r (Pid.of_int 1)) in
        let p2_outputs = List.length (Netsim.outputs_of r (Pid.of_int 2)) in
        Alcotest.(check int) "p1 output once then halted" 1 p1_outputs;
        Alcotest.(check bool) "p2 kept going" true (p2_outputs > 10);
        Alcotest.(check int) "halt recorded" 1 (List.length r.Netsim.halted));
    test "until stops the simulation" (fun () ->
        let r =
          Netsim.run
            ~until:(fun outputs -> List.length outputs >= 2)
            ~n ~pattern:(Pattern.failure_free ~n)
            ~model:(Link.Synchronous { delta = 5 })
            ~seed:4 ~horizon:10_000 ring_node
        in
        Alcotest.(check bool) "stopped early" true (List.length r.Netsim.outputs <= 3));
  ]

(* ---------- heartbeat QoS ---------- *)

let crashpat = pattern ~n [ (3, 700) ]

let run_hb model style =
  Netsim.run ~n ~pattern:crashpat ~model ~seed:42 ~horizon:3000 (Heartbeat.node style)

let heartbeat_tests =
  [
    test "synchronous + safe timeout = Perfect grade" (fun () ->
        let model = Link.Synchronous { delta = 10 } in
        let timeout = Option.get (Heartbeat.perfect_timeout model ~period:20) in
        let report = Qos.analyze (run_hb model (Heartbeat.Fixed { period = 20; timeout })) in
        Alcotest.(check bool) "complete" true report.Qos.complete;
        Alcotest.(check bool) "accurate" true report.Qos.accurate;
        Alcotest.(check bool) "perfect grade" true (Qos.perfect_grade report));
    test "detection latency is bounded by timeout + period" (fun () ->
        let model = Link.Synchronous { delta = 10 } in
        let timeout = Option.get (Heartbeat.perfect_timeout model ~period:20) in
        let report = Qos.analyze (run_hb model (Heartbeat.Fixed { period = 20; timeout })) in
        List.iter
          (fun latency ->
            Alcotest.(check bool)
              (Format.asprintf "latency %.0f bounded" latency)
              true
              (latency <= float_of_int (timeout + 20 + 1)))
          report.Qos.detection_latencies);
    test "partial synchrony breaks the fixed timeout (false suspicions)" (fun () ->
        let model = Link.Partially_synchronous { gst = 1000; delta = 10; wild_max = 120 } in
        let report = Qos.analyze (run_hb model (Heartbeat.Fixed { period = 20; timeout = 31 })) in
        Alcotest.(check bool) "not accurate" false report.Qos.accurate;
        Alcotest.(check bool) "still complete" true report.Qos.complete);
    test "adaptive timeouts reduce mistakes" (fun () ->
        let model = Link.Partially_synchronous { gst = 1000; delta = 10; wild_max = 120 } in
        let fixed = Qos.analyze (run_hb model (Heartbeat.Fixed { period = 20; timeout = 31 })) in
        let adaptive =
          Qos.analyze
            (run_hb model (Heartbeat.Adaptive { period = 20; initial_timeout = 31; backoff = 30 }))
        in
        Alcotest.(check bool)
          (Format.asprintf "adaptive %d < fixed %d" adaptive.Qos.false_episodes
             fixed.Qos.false_episodes)
          true
          (adaptive.Qos.false_episodes < fixed.Qos.false_episodes));
    test "adaptive detector is eventually accurate (no mistakes after GST settles)" (fun () ->
        let gst = 800 in
        let model = Link.Partially_synchronous { gst; delta = 10; wild_max = 120 } in
        let r =
          Netsim.run ~n ~pattern:(Pattern.failure_free ~n) ~model ~seed:17 ~horizon:6000
            (Heartbeat.node (Heartbeat.Adaptive { period = 20; initial_timeout = 31; backoff = 40 }))
        in
        (* after some settling period past gst, no correct process should be
           suspected any more *)
        let settle = gst + 2000 in
        List.iter
          (fun observer ->
            List.iter
              (fun subject ->
                if not (Pid.equal observer subject) then begin
                  let intervals = Qos.suspicion_intervals r ~observer ~subject in
                  List.iter
                    (fun (start, _) ->
                      Alcotest.(check bool)
                        (Format.asprintf "suspicion at %d before settle" start)
                        true (start < settle))
                    intervals
                end)
              (Pid.all ~n))
          (Pid.all ~n));
    test "no timeout is Perfect on asynchronous links" (fun () ->
        let model = Link.Asynchronous { mean = 15.; spike_every = 15; spike = 400 } in
        Alcotest.(check (option int)) "no perfect timeout" None
          (Heartbeat.perfect_timeout model ~period:20);
        let report = Qos.analyze (run_hb model (Heartbeat.Fixed { period = 20; timeout = 60 })) in
        Alcotest.(check bool) "mistakes happen" false report.Qos.accurate);
    test "suspicion intervals reconstruct the timeline" (fun () ->
        let model = Link.Synchronous { delta = 10 } in
        let timeout = Option.get (Heartbeat.perfect_timeout model ~period:20) in
        let r = run_hb model (Heartbeat.Fixed { period = 20; timeout }) in
        let observer = Pid.of_int 1 and subject = Pid.of_int 3 in
        match Qos.suspicion_intervals r ~observer ~subject with
        | [ (start, None) ] ->
          Alcotest.(check bool) "starts after the crash" true (start >= 700)
        | other ->
          Alcotest.failf "expected one open interval, got %d" (List.length other));
  ]

let () =
  Alcotest.run "net"
    [
      suite "links" link_tests;
      suite "netsim" netsim_tests;
      suite "heartbeat-qos" heartbeat_tests;
    ]
