(* EXP-11: the group membership service emulating P (Section 1.3). *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_net
open Rlfd_membership
open Helpers

let n = 5

let run ?(config = Gms.default_config) ?(seed = 11) ?(horizon = 4000) ~model pattern =
  Netsim.run ~n ~pattern ~model ~seed ~horizon (Gms.node config)

let sync = Link.Synchronous { delta = 8 }

let psync = Link.Partially_synchronous { gst = 900; delta = 8; wild_max = 100 }

let emulation_tests =
  [
    test "failure-free: view never changes" (fun () ->
        let r = run ~model:sync (Pattern.failure_free ~n) in
        Alcotest.(check int) "no view changes" 0 (List.length r.Netsim.outputs);
        check_holds "final views" (Gms.final_views_agree r));
    test "one crash: members converge on the new view" (fun () ->
        let r = run ~model:sync (pattern ~n [ (2, 500) ]) in
        check_all_hold "P emulation" (Gms.check_emulates_p r);
        check_holds "final views" (Gms.final_views_agree r);
        (* all four survivors installed view 1 without p2 *)
        let installs =
          List.filter
            (fun (_, _, ev) -> match ev with Gms.View_installed _ -> true | _ -> false)
            r.Netsim.outputs
        in
        Alcotest.(check int) "four installs" 4 (List.length installs));
    test "two staggered crashes" (fun () ->
        let r = run ~model:sync (pattern ~n [ (2, 500); (5, 1200) ]) in
        check_all_hold "P emulation" (Gms.check_emulates_p r);
        check_holds "final views" (Gms.final_views_agree r));
    test "coordinator crash: leadership moves down the view" (fun () ->
        let r = run ~model:sync (pattern ~n [ (1, 400) ]) in
        check_all_hold "P emulation" (Gms.check_emulates_p r);
        check_holds "final views" (Gms.final_views_agree r));
    test "simultaneous crash of a majority" (fun () ->
        let r = run ~model:sync (pattern ~n [ (1, 300); (2, 300); (3, 300) ]) in
        check_all_hold "P emulation" (Gms.check_emulates_p r);
        check_holds "final views" (Gms.final_views_agree r));
    test "no spurious exclusions on a synchronous link" (fun () ->
        let r = run ~model:sync (pattern ~n [ (4, 600) ]) in
        Alcotest.(check int) "nobody halted" 0 (List.length r.Netsim.halted));
    qtest ~count:15 "P emulation across seeds and crash times"
      QCheck.(pair small_int (int_range 100 1500))
      (fun (seed, crash_at) ->
        let r = run ~seed ~model:sync (pattern ~n [ (3, crash_at) ]) in
        Gms.check_emulates_p r |> List.for_all (fun (_, res) -> Classes.holds res));
  ]

let failstop_tests =
  [
    test "false suspicion under partial synchrony forces a halt" (fun () ->
        let r = run ~model:psync (pattern ~n [ (2, 500) ]) in
        (* pre-GST wildness typically excludes someone who is alive; the
           victim must actually halt, making the exclusion accurate *)
        check_all_hold "P emulation against effective pattern" (Gms.check_emulates_p r);
        check_holds "final views" (Gms.final_views_agree r));
    test "every halted process was excluded first" (fun () ->
        let r = run ~model:psync (pattern ~n [ (2, 500) ]) in
        let excluded_events =
          List.filter_map
            (fun (t, p, ev) -> match ev with Gms.Excluded_self -> Some (t, p) | _ -> None)
            r.Netsim.outputs
        in
        List.iter
          (fun (ht, hp) ->
            Alcotest.(check bool)
              (Format.asprintf "halt of %a matches an exclusion" Pid.pp hp)
              true
              (List.exists (fun (t, p) -> Pid.equal p hp && t <= ht) excluded_events))
          r.Netsim.halted);
    test "effective pattern subsumes real crashes" (fun () ->
        let injected = pattern ~n [ (2, 500) ] in
        let r = run ~model:psync injected in
        let effective = Gms.effective_pattern r in
        Pid.Set.iter
          (fun p ->
            Alcotest.(check bool)
              (Format.asprintf "%a still faulty" Pid.pp p)
              true
              (Pid.Set.mem p (Pattern.faulty effective)))
          (Pattern.faulty injected));
    test "emulated history reflects exclusions" (fun () ->
        let r = run ~model:sync (pattern ~n [ (2, 500) ]) in
        let h = Gms.emulated_history r in
        let survivor = Pid.of_int 1 in
        Alcotest.(check bool) "suspected at the end" true
          (Pid.Set.mem (Pid.of_int 2) (h survivor (Time.of_int r.Netsim.end_time)));
        Alcotest.(check bool) "not suspected at the start" false
          (Pid.Set.mem (Pid.of_int 2) (h survivor Time.zero)));
  ]

let config_tests =
  [
    test "longer timeouts just slow detection down" (fun () ->
        let config = { Gms.period = 20; timeout = 200 } in
        let r = run ~config ~model:sync (pattern ~n [ (3, 400) ]) in
        check_all_hold "P emulation" (Gms.check_emulates_p r);
        let first_install =
          List.find_map
            (fun (t, _, ev) -> match ev with Gms.View_installed _ -> Some t | _ -> None)
            r.Netsim.outputs
        in
        match first_install with
        | Some t -> Alcotest.(check bool) "after timeout" true (t >= 400 + 200)
        | None -> Alcotest.fail "no view installed");
    test "current_view accessor" (fun () ->
        let r = run ~model:sync (pattern ~n [ (2, 500) ]) in
        Pid.Map.iter
          (fun p st ->
            if Pid.Set.mem p (Pattern.correct r.Netsim.pattern) then begin
              let id, members = Gms.current_view st in
              Alcotest.(check int) (Format.asprintf "%a at view 1" Pid.pp p) 1 id;
              Alcotest.(check bool) "p2 excluded" false (Pid.Set.mem (Pid.of_int 2) members)
            end)
          r.Netsim.final_states);
  ]

let () =
  Alcotest.run "membership"
    [
      suite "p-emulation" emulation_tests;
      suite "fail-stop" failstop_tests;
      suite "configuration" config_tests;
    ]
