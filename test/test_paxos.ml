(* Omega-based, majority-quorum consensus (Paxos style): the other side of
   the hierarchy story - safe always, live only with a correct majority. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 5

let omega = Omega.canonical

let run_paxos ?(detector = omega) ?(scheduler = `Fair) ?(horizon = 8000) pattern =
  let scheduler =
    match scheduler with
    | `Fair -> Scheduler.fair ()
    | `Random seed -> Scheduler.random ~seed ~lambda_bias:0.3
  in
  Runner.run ~pattern ~detector ~scheduler ~horizon:(time horizon)
    ~until:(Runner.stop_when_all_correct_output pattern)
    (Paxos.automaton ~proposals)

let check_spec what r =
  check_all_hold what
    (Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r)

let liveness_tests =
  [
    test "failure-free: the first leader decides" (fun () ->
        let r = run_paxos (Pattern.failure_free ~n) in
        check_spec "failure-free" r;
        List.iter (fun v -> Alcotest.(check int) "p1's value" 1001 v) (decision_values r));
    test "leader crash: the next leader takes over" (fun () ->
        let r = run_paxos (pattern ~n [ (1, 10) ]) in
        check_spec "leader crash" r);
    test "two crashes (still a majority)" (fun () ->
        let r = run_paxos (pattern ~n [ (1, 10); (3, 30) ]) in
        check_spec "two crashes" r);
    test "random schedules" (fun () ->
        List.iter
          (fun seed ->
            let r = run_paxos ~scheduler:(`Random seed) (pattern ~n [ (2, 12) ]) in
            check_spec (Format.asprintf "seed %d" seed) r)
          [ 1; 2; 3; 4; 5 ]);
    qtest ~count:25 "spec holds in the majority-correct environment"
      QCheck.(pair small_int small_int)
      (fun (pattern_seed, sched_seed) ->
        let pattern =
          Environment.sample Environment.majority_correct ~n ~horizon:(time 80)
            (Rng.derive ~seed:pattern_seed ~salts:[ 0xA1 ])
        in
        let r = run_paxos ~scheduler:(`Random sched_seed) pattern in
        Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r
        |> List.for_all (fun (_, res) -> Classes.holds res));
  ]

let majority_gap_tests =
  [
    test "majority crashed: blocks, safely (the paper's environment gap)" (fun () ->
        let r = run_paxos ~horizon:3000 (pattern ~n [ (1, 10); (2, 15); (3, 20) ]) in
        check_violated "termination must fail" (Properties.termination r);
        check_holds "agreement intact" (Properties.uniform_agreement ~equal:Int.equal r);
        check_holds "validity intact" (Properties.validity ~proposals ~equal:Int.equal r));
    qtest ~count:15 "never unsafe even with majority crashes" QCheck.small_int
      (fun seed ->
        let rng = Rng.derive ~seed ~salts:[ 0xA2 ] in
        let pattern =
          Pattern.Family.generate Pattern.Family.majority_crashes ~n
            ~horizon:(time 80) rng
        in
        let r = run_paxos ~scheduler:(`Random seed) ~horizon:2000 pattern in
        Classes.holds (Properties.uniform_agreement ~equal:Int.equal r)
        && Classes.holds (Properties.validity ~proposals ~equal:Int.equal r));
    test "adversarial leader flapping stays safe" (fun () ->
        (* delay the stable leader's messages so later ballots interleave
           with stale ones: quorum intersection must still protect safety *)
        let pattern = pattern ~n [ (1, 40) ] in
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.random ~seed:9 ~lambda_bias:0.25)
            [ Scheduler.delay_from (pid 2) ~until:(time 300) ]
        in
        let r =
          Runner.run ~pattern ~detector:omega ~scheduler ~horizon:(time 9000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Paxos.automaton ~proposals)
        in
        check_holds "agreement" (Properties.uniform_agreement ~equal:Int.equal r);
        check_holds "validity" (Properties.validity ~proposals ~equal:Int.equal r));
    test "ballots grow under contention" (fun () ->
        let r = run_paxos ~horizon:2500 (pattern ~n [ (1, 10); (2, 15); (3, 20) ]) in
        (* the surviving self-styled leader keeps retrying *)
        let grew =
          Pid.Map.exists
            (fun p st ->
              Pattern.is_alive r.Runner.pattern p (time 100000)
              && Paxos.ballot_of st > n)
            r.Runner.final_states
        in
        Alcotest.(check bool) "ballot retries happened" true grew);
  ]

let small_scope_tests =
  [
    slow_test "exhaustive safety at n=3 (every schedule, crash of p1)" (fun () ->
        let n = 3 in
        let proposals p = 10 + Pid.to_int p in
        let report =
          Explore.run ~max_steps:8 ~max_nodes:2_000_000
            ~pattern:(Pattern.make ~n [ (Pid.of_int 1, Time.of_int 2) ])
            ~detector:Omega.canonical
            ~check:
              (Explore.both
                 (Explore.agreement_check ~equal:Int.equal)
                 (Explore.validity_check ~n ~proposals ~equal:Int.equal))
            (Paxos.automaton ~proposals)
        in
        Alcotest.(check int)
          (Format.asprintf "%a" Explore.pp_report report)
          0
          (List.length report.Explore.violations));
  ]

let () =
  Alcotest.run "paxos"
    [
      suite "liveness-with-majority" liveness_tests;
      suite "the-majority-gap" majority_gap_tests;
      suite "small-scope" small_scope_tests;
    ]
