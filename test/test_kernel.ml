open Rlfd_kernel
open Helpers

(* ---------- Pid ---------- *)

let pid_tests =
  [
    test "of_int/to_int roundtrip" (fun () ->
        Alcotest.(check int) "p7" 7 (Pid.to_int (pid 7)));
    test "of_int rejects zero" (fun () ->
        Alcotest.check_raises "0 invalid"
          (Invalid_argument "Pid.of_int: process indices are 1-based") (fun () ->
            ignore (pid 0)));
    test "all ~n lists 1..n" (fun () ->
        Alcotest.(check (list int)) "1..4" [ 1; 2; 3; 4 ]
          (List.map Pid.to_int (Pid.all ~n:4)));
    test "all rejects n=0" (fun () ->
        Alcotest.check_raises "n=0" (Invalid_argument "Pid.all: n must be positive")
          (fun () -> ignore (Pid.all ~n:0)));
    test "lower_than" (fun () ->
        Alcotest.(check (list int)) "below p3" [ 1; 2 ]
          (List.map Pid.to_int (Pid.lower_than (pid 3))));
    test "lower_than p1 is empty" (fun () ->
        Alcotest.(check (list int)) "below p1" [] (List.map Pid.to_int (Pid.lower_than (pid 1))));
    test "ordering is index order" (fun () ->
        Alcotest.(check bool) "p2 < p10" true (Pid.compare (pid 2) (pid 10) < 0));
    test "universe" (fun () ->
        Alcotest.(check int) "5 processes" 5 (Pid.Set.cardinal (Pid.universe ~n:5)));
    test "set pretty-printing" (fun () ->
        Alcotest.(check string) "render" "{p1,p3}"
          (Format.asprintf "%a" Pid.Set.pp (Pid.Set.of_ints [ 3; 1 ])));
  ]

(* ---------- Time ---------- *)

let time_tests =
  [
    test "zero and succ" (fun () ->
        Alcotest.(check int) "succ zero" 1 (Time.to_int (Time.succ Time.zero)));
    test "of_int rejects negatives" (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Time.of_int: time is a natural number") (fun () ->
            ignore (time (-1))));
    test "add" (fun () -> Alcotest.(check int) "3+4" 7 (Time.to_int (Time.add (time 3) 4)));
    test "comparisons" (fun () ->
        Alcotest.(check bool) "3 < 4" true Time.(time 3 < time 4);
        Alcotest.(check bool) "4 <= 4" true Time.(time 4 <= time 4);
        Alcotest.(check bool) "5 > 4" true Time.(time 5 > time 4));
    test "range inclusive" (fun () ->
        Alcotest.(check (list int)) "2..5" [ 2; 3; 4; 5 ]
          (List.map Time.to_int (Time.range (time 2) (time 5))));
    test "range empty when reversed" (fun () ->
        Alcotest.(check int) "empty" 0 (List.length (Time.range (time 5) (time 2))));
  ]

(* ---------- Rng ---------- *)

let rng_tests =
  [
    test "deterministic from seed" (fun () ->
        let a = Rng.make 42 and b = Rng.make 42 in
        let xs = List.init 20 (fun _ -> Rng.int a 1000) in
        let ys = List.init 20 (fun _ -> Rng.int b 1000) in
        Alcotest.(check (list int)) "same stream" xs ys);
    test "different seeds differ" (fun () ->
        let a = Rng.make 1 and b = Rng.make 2 in
        let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
        let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
        Alcotest.(check bool) "streams differ" false (xs = ys));
    test "split is independent of parent draws" (fun () ->
        let parent = Rng.make 7 in
        let child1 = Rng.split parent 1 in
        ignore (Rng.int parent 10);
        (* splitting depends only on state at split time; re-split from a
           fresh generator with same history must agree *)
        let parent2 = Rng.make 7 in
        let child2 = Rng.split parent2 1 in
        Alcotest.(check int) "same child stream" (Rng.int child1 1_000_000)
          (Rng.int child2 1_000_000));
    test "derive is pure" (fun () ->
        let a = Rng.derive ~seed:9 ~salts:[ 1; 2; 3 ] in
        let b = Rng.derive ~seed:9 ~salts:[ 1; 2; 3 ] in
        Alcotest.(check int) "equal" (Rng.int a 1_000_000) (Rng.int b 1_000_000));
    test "int rejects non-positive bound" (fun () ->
        Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Rng.int (Rng.make 1) 0)));
    test "pick rejects empty" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list") (fun () ->
            ignore (Rng.pick (Rng.make 1) ([] : int list))));
    qtest "int stays in bounds"
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let g = Rng.make seed in
        let v = Rng.int g bound in
        v >= 0 && v < bound);
    qtest "int_in stays in interval"
      QCheck.(triple small_int (int_range 0 100) (int_range 0 100))
      (fun (seed, a, b) ->
        let lo = min a b and hi = max a b in
        let v = Rng.int_in (Rng.make seed) lo hi in
        v >= lo && v <= hi);
    qtest "float stays in bounds" QCheck.small_int (fun seed ->
        let v = Rng.float (Rng.make seed) 1.0 in
        v >= 0.0 && v < 1.0);
    qtest "shuffle is a permutation" QCheck.(pair small_int (list small_int))
      (fun (seed, xs) ->
        let shuffled = Rng.shuffle (Rng.make seed) xs in
        List.sort compare shuffled = List.sort compare xs);
    qtest "subset is a sublist" QCheck.(pair small_int (list small_int))
      (fun (seed, xs) ->
        let sub = Rng.subset (Rng.make seed) ~p:0.5 xs in
        List.for_all (fun x -> List.mem x xs) sub);
    test "of_path is pure and distinct per path" (fun () ->
        let a = Rng.of_path ~seed:9 [ 4; 2 ] in
        let b = Rng.of_path ~seed:9 [ 4; 2 ] in
        Alcotest.(check int) "equal streams" (Rng.int a 1_000_000) (Rng.int b 1_000_000);
        let c = Rng.of_path ~seed:9 [ 4; 3 ] in
        let d = Rng.of_path ~seed:9 [ 4; 2 ] in
        Alcotest.(check bool) "sibling paths differ" false
          (List.init 8 (fun _ -> Rng.int c 1_000_000)
          = List.init 8 (fun _ -> Rng.int d 1_000_000)));
    test "of_path sibling streams don't correlate" (fun () ->
        (* Pearson correlation of consecutive sibling job streams: the
           campaign engine derives job i's stream as of_path [i], so
           neighbouring jobs must look independent. *)
        let draws g = List.init 1_000 (fun _ -> Rng.float g 1.0) in
        let correlation xs ys =
          let mx = Stats.mean xs and my = Stats.mean ys in
          let cov =
            List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0. xs ys
            /. float_of_int (List.length xs)
          in
          cov /. (Stats.stddev xs *. Stats.stddev ys)
        in
        List.iter
          (fun i ->
            let r =
              correlation
                (draws (Rng.of_path ~seed:2002 [ i ]))
                (draws (Rng.of_path ~seed:2002 [ i + 1 ]))
            in
            Alcotest.(check bool)
              (Format.asprintf "|corr(job %d, job %d)| = %.3f < 0.1" i (i + 1)
                 (Float.abs r))
              true
              (Float.abs r < 0.1))
          [ 0; 1; 2; 3; 4 ]);
    test "of_path first draws are uniform across siblings" (fun () ->
        let buckets = Array.make 10 0 in
        for i = 0 to 1_999 do
          let v = Rng.int (Rng.of_path ~seed:7 [ i ]) 10 in
          buckets.(v) <- buckets.(v) + 1
        done;
        Array.iter
          (fun c ->
            Alcotest.(check bool)
              (Format.asprintf "bucket count %d in [140,260]" c)
              true (c > 140 && c < 260))
          buckets);
    test "int is roughly uniform" (fun () ->
        let g = Rng.make 123 in
        let buckets = Array.make 10 0 in
        for _ = 1 to 10_000 do
          let v = Rng.int g 10 in
          buckets.(v) <- buckets.(v) + 1
        done;
        Array.iter
          (fun c ->
            Alcotest.(check bool)
              (Format.asprintf "bucket count %d in [800,1200]" c)
              true
              (c > 800 && c < 1200))
          buckets);
    test "exponential has the requested mean" (fun () ->
        let g = Rng.make 5 in
        let samples = List.init 20_000 (fun _ -> Rng.exponential g ~mean:10.0) in
        let mean = Stats.mean samples in
        Alcotest.(check bool)
          (Format.asprintf "mean %.2f near 10" mean)
          true
          (mean > 9.0 && mean < 11.0));
  ]

(* ---------- Pqueue ---------- *)

let pqueue_tests =
  [
    test "pop empty" (fun () ->
        let q : int Pqueue.t = Pqueue.create () in
        Alcotest.(check bool) "none" true (Pqueue.pop q = None));
    test "min-first" (fun () ->
        let q = Pqueue.create () in
        List.iter (fun p -> Pqueue.add q ~prio:p p) [ 5; 1; 4; 2; 3 ];
        let order = List.init 5 (fun _ -> match Pqueue.pop q with Some (p, _) -> p | None -> -1) in
        Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] order);
    test "ties break by insertion order" (fun () ->
        let q = Pqueue.create () in
        List.iter (fun v -> Pqueue.add q ~prio:7 v) [ "a"; "b"; "c" ];
        let order =
          List.init 3 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?")
        in
        Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ] order);
    test "peek does not remove" (fun () ->
        let q = Pqueue.create () in
        Pqueue.add q ~prio:3 "x";
        ignore (Pqueue.peek q);
        Alcotest.(check int) "still one" 1 (Pqueue.length q));
    test "to_list snapshot preserves queue" (fun () ->
        let q = Pqueue.create () in
        List.iter (fun p -> Pqueue.add q ~prio:p p) [ 3; 1; 2 ];
        let snapshot = List.map fst (Pqueue.to_list q) in
        Alcotest.(check (list int)) "snapshot sorted" [ 1; 2; 3 ] snapshot;
        Alcotest.(check int) "queue intact" 3 (Pqueue.length q));
    qtest "pops in sorted order" QCheck.(list (int_range 0 1000)) (fun prios ->
        let q = Pqueue.create () in
        List.iter (fun p -> Pqueue.add q ~prio:p p) prios;
        let rec drain acc =
          match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
        in
        drain [] = List.sort compare prios);
    test "clear" (fun () ->
        let q = Pqueue.create () in
        Pqueue.add q ~prio:1 1;
        Pqueue.clear q;
        Alcotest.(check bool) "empty" true (Pqueue.is_empty q));
  ]

(* ---------- Vclock ---------- *)

let vclock_tests =
  [
    test "empty has zero everywhere" (fun () ->
        Alcotest.(check int) "zero" 0 (Vclock.get Vclock.empty (pid 3)));
    test "tick increments" (fun () ->
        let vc = Vclock.tick (Vclock.tick Vclock.empty (pid 2)) (pid 2) in
        Alcotest.(check int) "two" 2 (Vclock.get vc (pid 2)));
    test "merge takes max" (fun () ->
        let a = Vclock.tick (Vclock.tick Vclock.empty (pid 1)) (pid 1) in
        let b = Vclock.tick Vclock.empty (pid 2) in
        let m = Vclock.merge a b in
        Alcotest.(check int) "p1" 2 (Vclock.get m (pid 1));
        Alcotest.(check int) "p2" 1 (Vclock.get m (pid 2)));
    test "leq reflexive" (fun () ->
        let a = Vclock.tick Vclock.empty (pid 1) in
        Alcotest.(check bool) "a <= a" true (Vclock.leq a a));
    test "concurrent clocks" (fun () ->
        let a = Vclock.tick Vclock.empty (pid 1) in
        let b = Vclock.tick Vclock.empty (pid 2) in
        Alcotest.(check bool) "concurrent" true (Vclock.concurrent a b));
    test "merge dominates both" (fun () ->
        let a = Vclock.tick Vclock.empty (pid 1) in
        let b = Vclock.tick Vclock.empty (pid 2) in
        let m = Vclock.merge a b in
        Alcotest.(check bool) "a <= m" true (Vclock.leq a m);
        Alcotest.(check bool) "b <= m" true (Vclock.leq b m));
    qtest "merge is commutative" QCheck.(pair (list (int_range 1 6)) (list (int_range 1 6)))
      (fun (xs, ys) ->
        let clock = List.fold_left (fun vc i -> Vclock.tick vc (pid i)) Vclock.empty in
        let a = clock xs and b = clock ys in
        Vclock.equal (Vclock.merge a b) (Vclock.merge b a));
    qtest "merge is associative" QCheck.(triple (list (int_range 1 6)) (list (int_range 1 6)) (list (int_range 1 6)))
      (fun (xs, ys, zs) ->
        let clock = List.fold_left (fun vc i -> Vclock.tick vc (pid i)) Vclock.empty in
        let a = clock xs and b = clock ys and c = clock zs in
        Vclock.equal (Vclock.merge a (Vclock.merge b c)) (Vclock.merge (Vclock.merge a b) c));
    qtest "merge is idempotent" QCheck.(list (int_range 1 6)) (fun xs ->
        let a = List.fold_left (fun vc i -> Vclock.tick vc (pid i)) Vclock.empty xs in
        Vclock.equal (Vclock.merge a a) a);
    qtest "leq is antisymmetric up to equality" QCheck.(pair (list (int_range 1 6)) (list (int_range 1 6)))
      (fun (xs, ys) ->
        let clock = List.fold_left (fun vc i -> Vclock.tick vc (pid i)) Vclock.empty in
        let a = clock xs and b = clock ys in
        (not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b);
    test "support lists contributors" (fun () ->
        let vc = Vclock.merge (Vclock.singleton (pid 1)) (Vclock.singleton (pid 4)) in
        Alcotest.(check string) "support" "{p1,p4}"
          (Format.asprintf "%a" Pid.Set.pp (Vclock.support vc)));
  ]

(* ---------- Stats ---------- *)

let stats_tests =
  [
    test "mean of empty is 0" (fun () -> Alcotest.(check (float 1e-9)) "0" 0. (Stats.mean []));
    test "mean" (fun () ->
        Alcotest.(check (float 1e-9)) "2.5" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]));
    test "stddev of constant is 0" (fun () ->
        Alcotest.(check (float 1e-9)) "0" 0. (Stats.stddev [ 5.; 5.; 5. ]));
    test "median" (fun () ->
        Alcotest.(check (float 1e-9)) "3" 3. (Stats.median [ 5.; 1.; 3.; 2.; 4. ]));
    test "percentile bounds" (fun () ->
        let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
        Alcotest.(check (float 1e-9)) "p99" 99. (Stats.percentile xs 0.99);
        Alcotest.(check (float 1e-9)) "p100" 100. (Stats.percentile xs 1.0));
    test "percentile rejects empty" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty data")
          (fun () -> ignore (Stats.percentile [] 0.5)));
    test "min/max" (fun () ->
        Alcotest.(check (float 1e-9)) "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
        Alcotest.(check (float 1e-9)) "max" 3. (Stats.maximum [ 3.; 1.; 2. ]));
    test "histogram covers all samples" (fun () ->
        let xs = List.init 50 (fun i -> float_of_int i) in
        let hist = Stats.histogram ~buckets:5 xs in
        let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 hist in
        Alcotest.(check int) "total" 50 total);
    test "histogram of empty" (fun () ->
        Alcotest.(check int) "empty" 0 (List.length (Stats.histogram ~buckets:4 [])));
    test "histogram rejects non-positive buckets" (fun () ->
        Alcotest.check_raises "zero buckets"
          (Invalid_argument "Stats.histogram: buckets must be positive") (fun () ->
            ignore (Stats.histogram ~buckets:0 [ 1.; 2. ]));
        Alcotest.check_raises "negative buckets"
          (Invalid_argument "Stats.histogram: buckets must be positive") (fun () ->
            ignore (Stats.histogram ~buckets:(-3) [])));
    test "histogram of a single element" (fun () ->
        let hist = Stats.histogram ~buckets:3 [ 7. ] in
        Alcotest.(check int) "three buckets" 3 (List.length hist);
        let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 hist in
        Alcotest.(check int) "sample counted once" 1 total);
    test "count/sum on empty and singleton" (fun () ->
        Alcotest.(check int) "count []" 0 (Stats.count []);
        Alcotest.(check (float 1e-9)) "sum []" 0. (Stats.sum []);
        Alcotest.(check int) "count [x]" 1 (Stats.count [ 3. ]);
        Alcotest.(check (float 1e-9)) "sum [x]" 3. (Stats.sum [ 3. ]));
    test "sum" (fun () ->
        Alcotest.(check (float 1e-9)) "10" 10. (Stats.sum [ 1.; 2.; 3.; 4. ]));
    test "variance edges" (fun () ->
        Alcotest.(check (float 1e-9)) "variance []" 0. (Stats.variance []);
        Alcotest.(check (float 1e-9)) "variance [x]" 0. (Stats.variance [ 42. ]));
    test "variance is squared stddev" (fun () ->
        let xs = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
        Alcotest.(check (float 1e-9)) "consistent" (Stats.stddev xs ** 2.)
          (Stats.variance xs));
    qtest "variance is non-negative" QCheck.(list (float_bound_exclusive 100.))
      (fun xs -> Stats.variance xs >= 0.);
  ]

(* ---------- Table ---------- *)

let table_tests =
  [
    test "renders header and rows" (fun () ->
        let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
        Table.add_row t [ "1"; "2" ];
        let s = Format.asprintf "%a" Table.pp t in
        Alcotest.(check bool) "has title" true
          (String.length s > 0 && String.sub s 0 2 = "==");
        Alcotest.(check bool) "mentions column" true
          (contains_substring ~needle:"bb" s));
    test "rejects ragged rows" (fun () ->
        let t = Table.create ~title:"x" ~columns:[ "a"; "b" ] in
        Alcotest.check_raises "ragged" (Invalid_argument "Table.add_row: row width mismatch")
          (fun () -> Table.add_row t [ "only-one" ]));
    test "cell helpers" (fun () ->
        Alcotest.(check string) "int" "42" (Table.cell_int 42);
        Alcotest.(check string) "float" "3.14" (Table.cell_float 3.14159);
        Alcotest.(check string) "bool" "yes" (Table.cell_bool true);
        Alcotest.(check string) "pct" "25.0%" (Table.cell_pct 0.25));
  ]

(* ---------- Hashing ---------- *)

let hashing_tests =
  [
    test "mix64 is deterministic and spreads nearby inputs" (fun () ->
        Alcotest.(check bool) "same input, same output" true
          (Int64.equal (Hashing.mix64 42L) (Hashing.mix64 42L));
        let outs = List.init 1000 (fun i -> Hashing.of_int i) in
        Alcotest.(check int) "1000 consecutive ints, 1000 distinct hashes" 1000
          (List.length (List.sort_uniq Int64.compare outs)));
    test "of_string distinguishes strings and is deterministic" (fun () ->
        Alcotest.(check bool) "stable" true
          (Int64.equal (Hashing.of_string "abc") (Hashing.of_string "abc"));
        Alcotest.(check bool) "abc <> acb" false
          (Int64.equal (Hashing.of_string "abc") (Hashing.of_string "acb"));
        Alcotest.(check bool) "empty <> nul" false
          (Int64.equal (Hashing.of_string "") (Hashing.of_string "\000")));
    test "combine is order-sensitive" (fun () ->
        let a = Hashing.of_int 1 and b = Hashing.of_int 2 in
        Alcotest.(check bool) "ab <> ba" false
          (Int64.equal
             (Hashing.combine (Hashing.combine 0L a) b)
             (Hashing.combine (Hashing.combine 0L b) a));
        Alcotest.(check bool) "fold_ints agrees" true
          (Int64.equal
             (Hashing.fold_ints 0L [ 1; 2 ])
             (Hashing.combine (Hashing.combine 0L a) b)));
    test "table stores and retrieves thousands of keys across growth" (fun () ->
        let t = Hashing.Table.create ~initial:8 () in
        for i = 0 to 4999 do
          let s = string_of_int i in
          Hashing.Table.set t ~key:(Hashing.of_string s) s i
        done;
        Alcotest.(check int) "5000 distinct keys" 5000 (Hashing.Table.length t);
        Alcotest.(check bool) "grew past initial" true
          (Hashing.Table.capacity t > 8);
        for i = 0 to 4999 do
          let s = string_of_int i in
          match Hashing.Table.find t ~key:(Hashing.of_string s) s with
          | Some v when v = i -> ()
          | _ -> Alcotest.fail (Printf.sprintf "lost key %d" i)
        done);
    test "a fingerprint collision never conflates different keys" (fun () ->
        (* Force the collision by storing two different byte strings under
           the same 64-bit key: the table must fall back to full-string
           comparison, exactly what protects the explorer's visited set. *)
        let t = Hashing.Table.create ~initial:8 () in
        let key = 0xDEADBEEFL in
        Hashing.Table.set t ~key "first" 1;
        Alcotest.(check (option int)) "other bytes, same key: absent" None
          (Hashing.Table.find t ~key "second");
        Hashing.Table.set t ~key "second" 2;
        Alcotest.(check (option int)) "first still there" (Some 1)
          (Hashing.Table.find t ~key "first");
        Alcotest.(check (option int)) "second stored separately" (Some 2)
          (Hashing.Table.find t ~key "second");
        Alcotest.(check int) "two entries" 2 (Hashing.Table.length t));
    test "keys differing only in the truncated top bit never conflate" (fun () ->
        (* Internally the table keeps fingerprints as native 63-bit ints,
           so these two 64-bit keys probe the same slot chain; the
           full-byte confirmation must still keep the entries apart. *)
        let t = Hashing.Table.create ~initial:8 () in
        let low = 0x123456789ABCDEFL in
        let high = Int64.logor low Int64.min_int in
        Hashing.Table.set t ~key:low "low-bytes" 1;
        Hashing.Table.set t ~key:high "high-bytes" 2;
        Alcotest.(check (option int)) "low key, low bytes" (Some 1)
          (Hashing.Table.find t ~key:low "low-bytes");
        Alcotest.(check (option int)) "high key, high bytes" (Some 2)
          (Hashing.Table.find t ~key:high "high-bytes");
        Alcotest.(check (option int)) "high key, low bytes also found" (Some 1)
          (Hashing.Table.find t ~key:high "low-bytes");
        Alcotest.(check int) "two entries" 2 (Hashing.Table.length t));
    test "set overwrites in place" (fun () ->
        let t = Hashing.Table.create () in
        let key = Hashing.of_string "k" in
        Hashing.Table.set t ~key "k" 1;
        Hashing.Table.set t ~key "k" 2;
        Alcotest.(check (option int)) "latest value" (Some 2)
          (Hashing.Table.find t ~key "k");
        Alcotest.(check int) "one entry" 1 (Hashing.Table.length t));
  ]

(* ---------- Intern: hashconsing for the fingerprint kernel ---------- *)

let intern_tests =
  [
    test "ids are dense and in bijection with structural equality" (fun () ->
        let t = Intern.create ~encode:(fun (a, b) -> Printf.sprintf "%d,%d" a b) () in
        let e1 = Intern.intern t (1, 2) in
        let e2 = Intern.intern t (3, 4) in
        let e3 = Intern.intern t (1, 2) in
        Alcotest.(check int) "first id" 0 (Intern.id e1);
        Alcotest.(check int) "second id" 1 (Intern.id e2);
        Alcotest.(check int) "structurally equal value, same id" (Intern.id e1)
          (Intern.id e3);
        Alcotest.(check bool) "same entry physically" true (e1 == e3);
        Alcotest.(check int) "two distinct values" 2 (Intern.length t));
    test "entries carry the value, encoding and fingerprint" (fun () ->
        let encode = string_of_int in
        let t = Intern.create ~encode () in
        let e = Intern.intern t 42 in
        Alcotest.(check int) "value recoverable" 42 (Intern.value e);
        Alcotest.(check string) "enc is the canonical bytes" (encode 42)
          (Intern.enc e);
        Alcotest.(check bool) "h is the fingerprint of enc" true
          (Intern.h e = Hashing.of_string_int (encode 42)));
    test "renaming lanes intern the whole orbit once" (fun () ->
        (* A 2-element group: identity and negation. *)
        let t =
          Intern.create ~nlanes:2
            ~rename:(fun k v -> if k = 0 then v else -v)
            ~encode:string_of_int ()
        in
        let e = Intern.intern t 5 in
        Alcotest.(check bool) "lane 0 is the entry itself" true
          (Intern.ren e 0 == e);
        Alcotest.(check int) "lane 1 holds the renamed value" (-5)
          (Intern.value (Intern.ren e 1));
        Alcotest.(check bool) "renaming twice leads back" true
          (Intern.ren (Intern.ren e 1) 1 == e);
        Alcotest.(check int) "orbit interned eagerly" 2 (Intern.length t);
        (* A fixed point of the group renames to itself. *)
        let z = Intern.intern t 0 in
        Alcotest.(check bool) "fixed point, same entry" true (Intern.ren z 1 == z));
    test "fingerprints agree across independent tables" (fun () ->
        let t1 = Intern.create ~encode:string_of_int () in
        let t2 = Intern.create ~encode:string_of_int () in
        ignore (Intern.intern t1 99);
        Alcotest.(check bool) "h is a pure function of the value" true
          (Intern.h (Intern.intern t1 7) = Intern.h (Intern.intern t2 7)));
    test "create rejects nlanes < 1" (fun () ->
        Alcotest.check_raises "nlanes = 0"
          (Invalid_argument "Intern.create: nlanes < 1") (fun () ->
            ignore (Intern.create ~nlanes:0 ~encode:string_of_int ())));
  ]

(* ---------- Store: the explorer's visited-set tiers ---------- *)

let spill_dir () =
  let f = Filename.temp_file "rlfd-store-test" "" in
  Sys.remove f;
  f

let store_tests =
  [
    test "in_ram: set, find, overwrite, length" (fun () ->
        let t = Store.in_ram () in
        let key s = Hashing.of_string s in
        Store.set t ~key:(key "a") "a" 1;
        Store.set t ~key:(key "b") "b" 2;
        Alcotest.(check (option int)) "a" (Some 1) (Store.find t ~key:(key "a") "a");
        Alcotest.(check (option int)) "missing" None (Store.find t ~key:(key "c") "c");
        Store.set t ~key:(key "a") "a" 3;
        Alcotest.(check (option int)) "overwritten" (Some 3)
          (Store.find t ~key:(key "a") "a");
        Alcotest.(check int) "two entries" 2 (Store.length t);
        Alcotest.(check int) "RAM tier never spills" 0 (Store.spilled t);
        Alcotest.(check bool) "not spilling" false (Store.is_spilling t);
        Store.close t);
    test "spilling: every key retrievable after the cache is evicted" (fun () ->
        let dir = spill_dir () in
        (* 64-byte keys, 512-byte cache: only the last handful stay hot. *)
        let t = Store.spilling ~cache_bytes:512 ~dir () in
        let mk i = Printf.sprintf "%064d" i in
        for i = 0 to 199 do
          let s = mk i in
          Store.set t ~key:(Hashing.of_string s) s i
        done;
        Alcotest.(check int) "200 entries" 200 (Store.length t);
        Alcotest.(check bool) "is spilling" true (Store.is_spilling t);
        Alcotest.(check bool) "most keys evicted to disk" true
          (Store.spilled t > 150);
        for i = 0 to 199 do
          let s = mk i in
          match Store.find t ~key:(Hashing.of_string s) s with
          | Some v when v = i -> ()
          | _ -> Alcotest.fail (Printf.sprintf "lost spilled key %d" i)
        done;
        Alcotest.(check (option int)) "absent key stays absent" None
          (Store.find t ~key:(Hashing.of_string "nope") "nope");
        Store.close t);
    test "spilling: a fingerprint hit with different bytes is not a match" (fun () ->
        let dir = spill_dir () in
        let t = Store.spilling ~cache_bytes:16 ~dir () in
        let key = 0xDEADBEEFL in
        Store.set t ~key "first-bytes-here" 1;
        (* push "first-bytes-here" out of the 16-byte cache *)
        Store.set t ~key:(Hashing.of_string "filler") "filler-filler-filler" 2;
        Alcotest.(check (option int))
          "same fingerprint, other bytes: disk confirmation rejects" None
          (Store.find t ~key "other-bytes-here");
        Alcotest.(check (option int)) "original still found via disk" (Some 1)
          (Store.find t ~key "first-bytes-here");
        Store.close t);
    test "spilling: overwriting a value never rewrites the bytes" (fun () ->
        let dir = spill_dir () in
        let t = Store.spilling ~cache_bytes:4096 ~dir () in
        let s = String.make 100 'x' in
        let key = Hashing.of_string s in
        Store.set t ~key s 1;
        let bytes_once = Store.ram_bytes t in
        Store.set t ~key s 2;
        Store.set t ~key s 3;
        Alcotest.(check (option int)) "latest value" (Some 3) (Store.find t ~key s);
        Alcotest.(check int) "still one entry" 1 (Store.length t);
        Alcotest.(check int) "no byte growth on value updates" bytes_once
          (Store.ram_bytes t);
        Store.close t);
    test "spilling and in_ram agree on a mixed workload" (fun () ->
        let dir = spill_dir () in
        let ram = Store.in_ram () in
        let disk = Store.spilling ~cache_bytes:256 ~dir () in
        let mk i = Printf.sprintf "key-%d-%s" i (String.make (i mod 37) 'p') in
        for i = 0 to 299 do
          let s = mk i in
          let key = Hashing.of_string s in
          Store.set ram ~key s (i * 2);
          Store.set disk ~key s (i * 2)
        done;
        for i = 0 to 349 do
          let s = mk i in
          let key = Hashing.of_string s in
          Alcotest.(check (option int))
            (Printf.sprintf "key %d agrees" i)
            (Store.find ram ~key s) (Store.find disk ~key s)
        done;
        Alcotest.(check int) "same length" (Store.length ram) (Store.length disk);
        Store.close ram;
        Store.close disk);
  ]

let () =
  Alcotest.run "kernel"
    [
      suite "pid" pid_tests;
      suite "time" time_tests;
      suite "rng" rng_tests;
      suite "pqueue" pqueue_tests;
      suite "vclock" vclock_tests;
      suite "stats" stats_tests;
      suite "table" table_tests;
      suite "hashing" hashing_tests;
      suite "intern" intern_tests;
      suite "store" store_tests;
    ]
