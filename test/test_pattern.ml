open Rlfd_kernel
open Rlfd_fd
open Helpers

let n = 5

let basic_tests =
  [
    test "failure-free has everyone correct" (fun () ->
        let f = Pattern.failure_free ~n in
        Alcotest.(check int) "correct" n (Pid.Set.cardinal (Pattern.correct f));
        Alcotest.(check int) "faulty" 0 (Pattern.num_faulty f));
    test "make rejects duplicates" (fun () ->
        Alcotest.check_raises "dup" (Invalid_argument "Pattern.make: duplicate process")
          (fun () -> ignore (pattern ~n [ (1, 3); (1, 5) ])));
    test "make rejects out-of-range pid" (fun () ->
        Alcotest.check_raises "oob"
          (Invalid_argument "Pattern.make: process index exceeds n") (fun () ->
            ignore (pattern ~n [ (6, 3) ])));
    test "crashed_by is monotone cumulative" (fun () ->
        let f = pattern ~n [ (1, 3); (2, 7) ] in
        Alcotest.(check int) "t=2" 0 (Pid.Set.cardinal (Pattern.crashed_by f (time 2)));
        Alcotest.(check int) "t=3" 1 (Pid.Set.cardinal (Pattern.crashed_by f (time 3)));
        Alcotest.(check int) "t=100" 2 (Pid.Set.cardinal (Pattern.crashed_by f (time 100))));
    test "is_crashed at exact crash time" (fun () ->
        let f = pattern ~n [ (4, 10) ] in
        Alcotest.(check bool) "t=9 alive" true (Pattern.is_alive f (pid 4) (time 9));
        Alcotest.(check bool) "t=10 crashed" true (Pattern.is_crashed f (pid 4) (time 10)));
    test "alive_at complements crashed_by" (fun () ->
        let f = pattern ~n [ (1, 0); (5, 2) ] in
        let t = time 2 in
        let union = Pid.Set.union (Pattern.alive_at f t) (Pattern.crashed_by f t) in
        Alcotest.(check int) "partition" n (Pid.Set.cardinal union));
    test "correct/faulty partition" (fun () ->
        let f = pattern ~n [ (2, 5); (3, 9) ] in
        Alcotest.(check string) "faulty" "{p2,p3}"
          (Format.asprintf "%a" Pid.Set.pp (Pattern.faulty f));
        Alcotest.(check string) "correct" "{p1,p4,p5}"
          (Format.asprintf "%a" Pid.Set.pp (Pattern.correct f)));
    test "equal/compare" (fun () ->
        let a = pattern ~n [ (1, 2) ] and b = pattern ~n [ (1, 2) ] in
        Alcotest.(check bool) "equal" true (Pattern.equal a b);
        let c = pattern ~n [ (1, 3) ] in
        Alcotest.(check bool) "not equal" false (Pattern.equal a c));
  ]

let prefix_tests =
  [
    test "prefix keeps only events <= t" (fun () ->
        let f = pattern ~n [ (1, 3); (2, 8) ] in
        let p = Pattern.prefix f (time 5) in
        Alcotest.(check int) "one event" 1 (List.length (Pattern.prefix_events p));
        Alcotest.(check string) "crashed" "{p1}"
          (Format.asprintf "%a" Pid.Set.pp (Pattern.prefix_crashed p)));
    test "prefix_equal distinguishes upto" (fun () ->
        let f = pattern ~n [ (1, 3) ] in
        Alcotest.(check bool) "different upto" false
          (Pattern.prefix_equal (Pattern.prefix f (time 4)) (Pattern.prefix f (time 5)));
        Alcotest.(check bool) "same" true
          (Pattern.prefix_equal (Pattern.prefix f (time 4)) (Pattern.prefix f (time 4))));
    test "prefix events are sorted by time" (fun () ->
        let f = pattern ~n [ (3, 9); (1, 2); (2, 5) ] in
        let events = Pattern.prefix_events (Pattern.prefix f (time 100)) in
        let times = List.map (fun (_, t) -> Time.to_int t) events in
        Alcotest.(check (list int)) "sorted" [ 2; 5; 9 ] times);
  ]

let divergence_tests =
  [
    test "identical patterns never diverge" (fun () ->
        let f = pattern ~n [ (1, 3) ] in
        Alcotest.(check bool) "none" true (Pattern.divergence_time f f = None));
    test "divergence at the differing crash" (fun () ->
        let a = pattern ~n [ (1, 3) ] and b = pattern ~n [ (1, 7) ] in
        Alcotest.(check (option int)) "t=3" (Some 3)
          (Option.map Time.to_int (Pattern.divergence_time a b)));
    test "extra crash diverges at its time" (fun () ->
        let a = pattern ~n [ (1, 3) ] and b = pattern ~n [ (1, 3); (2, 6) ] in
        Alcotest.(check (option int)) "t=6" (Some 6)
          (Option.map Time.to_int (Pattern.divergence_time a b)));
    test "agree_through strictly before divergence" (fun () ->
        let a = pattern ~n [ (1, 3) ] and b = pattern ~n [] in
        Alcotest.(check bool) "agree at 2" true (Pattern.agree_through a b (time 2));
        Alcotest.(check bool) "disagree at 3" false (Pattern.agree_through a b (time 3)));
    test "the paper's F1/F2 agree through 9" (fun () ->
        let f1, f2, witness = Marabout.paper_example ~n in
        Alcotest.(check bool) "agree through 9" true (Pattern.agree_through f1 f2 witness);
        Alcotest.(check (option int)) "diverge at 10" (Some 10)
          (Option.map Time.to_int (Pattern.divergence_time f1 f2)));
    qtest "divergence is symmetric"
      QCheck.(pair (arb_pattern ~n ~horizon:50) (arb_pattern ~n ~horizon:50))
      (fun (a, b) -> Pattern.divergence_time a b = Pattern.divergence_time b a);
    qtest "truncate_after t agrees with original through t"
      QCheck.(pair (arb_pattern ~n ~horizon:50) (int_range 0 60))
      (fun (f, t) -> Pattern.agree_through f (Pattern.truncate_after f (time t)) (time t));
  ]

let surgery_tests =
  [
    test "crash adds a crash" (fun () ->
        let f = Pattern.crash (Pattern.failure_free ~n) (pid 2) (time 4) in
        Alcotest.(check (option int)) "time" (Some 4)
          (Option.map Time.to_int (Pattern.crash_time f (pid 2))));
    test "crash_all_except spares the keeper" (fun () ->
        let f = pattern ~n [ (1, 2) ] in
        let g = Pattern.crash_all_except f ~keep:(pid 3) ~at:(time 10) in
        Alcotest.(check string) "only p3 correct" "{p3}"
          (Format.asprintf "%a" Pid.Set.pp (Pattern.correct g));
        Alcotest.(check (option int)) "p1 keeps early crash" (Some 2)
          (Option.map Time.to_int (Pattern.crash_time g (pid 1)));
        Alcotest.(check (option int)) "p2 crashes at 10" (Some 10)
          (Option.map Time.to_int (Pattern.crash_time g (pid 2))));
    test "crash_all_except revives the keeper" (fun () ->
        let f = pattern ~n [ (3, 2) ] in
        let g = Pattern.crash_all_except f ~keep:(pid 3) ~at:(time 10) in
        Alcotest.(check bool) "p3 correct" true (Pid.Set.mem (pid 3) (Pattern.correct g)));
    test "truncate_after drops late crashes only" (fun () ->
        let f = pattern ~n [ (1, 3); (2, 30) ] in
        let g = Pattern.truncate_after f (time 10) in
        Alcotest.(check bool) "p1 still crashes" true (Pid.Set.mem (pid 1) (Pattern.faulty g));
        Alcotest.(check bool) "p2 saved" true (Pid.Set.mem (pid 2) (Pattern.correct g)));
  ]

let family_tests =
  let rng seed = Rng.derive ~seed ~salts:[ 0xFA ] in
  let horizon = time 80 in
  [
    test "failure_free family" (fun () ->
        let f = Pattern.Family.(generate failure_free) ~n ~horizon (rng 1) in
        Alcotest.(check int) "0 faulty" 0 (Pattern.num_faulty f));
    test "single_crash family" (fun () ->
        let f = Pattern.Family.(generate single_crash) ~n ~horizon (rng 2) in
        Alcotest.(check int) "1 faulty" 1 (Pattern.num_faulty f));
    qtest "minority family keeps a correct majority" QCheck.small_int (fun seed ->
        let f = Pattern.Family.(generate minority_crashes) ~n ~horizon (rng seed) in
        Pattern.num_faulty f < (n + 1) / 2);
    qtest "majority family crashes at least half" QCheck.small_int (fun seed ->
        let f = Pattern.Family.(generate majority_crashes) ~n ~horizon (rng seed) in
        Pattern.num_faulty f >= n / 2);
    qtest "all_but_one leaves exactly one correct" QCheck.small_int (fun seed ->
        let f = Pattern.Family.(generate all_but_one) ~n ~horizon (rng seed) in
        Pid.Set.cardinal (Pattern.correct f) = 1);
    qtest "simultaneous crashes share one instant" QCheck.small_int (fun seed ->
        let f = Pattern.Family.(generate simultaneous) ~n ~horizon (rng seed) in
        let times =
          Pid.Set.elements (Pattern.faulty f)
          |> List.filter_map (fun p -> Pattern.crash_time f p)
        in
        match times with [] -> false | t :: ts -> List.for_all (Time.equal t) ts);
    qtest "every family keeps at least one correct process" QCheck.small_int (fun seed ->
        List.for_all
          (fun family ->
            let f = Pattern.Family.generate family ~n ~horizon (rng seed) in
            Pid.Set.cardinal (Pattern.correct f) >= 1)
          Pattern.Family.all);
    qtest "crash times respect the horizon" QCheck.small_int (fun seed ->
        List.for_all
          (fun family ->
            let f = Pattern.Family.generate family ~n ~horizon (rng seed) in
            Pid.Set.for_all
              (fun p ->
                match Pattern.crash_time f p with
                | None -> true
                | Some t -> Time.(t <= horizon))
              (Pattern.faulty f))
          Pattern.Family.all);
  ]

let () =
  Alcotest.run "pattern"
    [
      suite "basics" basic_tests;
      suite "prefixes" prefix_tests;
      suite "divergence" divergence_tests;
      suite "surgery" surgery_tests;
      suite "families" family_tests;
    ]
