(* EXP-4: terminating reliable broadcast (Section 5) - the crash-stop
   Byzantine Generals. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 5

let value = 7777

let run_trb ?(detector = Perfect.canonical) ?(scheduler = `Fair) ?(sender = 1) pattern =
  let scheduler =
    match scheduler with
    | `Fair -> Scheduler.fair ()
    | `Random seed -> Scheduler.random ~seed ~lambda_bias:0.3
  in
  Runner.run ~pattern ~detector ~scheduler ~horizon:(time 6000)
    ~until:(Runner.stop_when_all_correct_output pattern)
    (Trb.automaton ~sender:(pid sender) ~value)

let check_trb ?(sender = 1) what r =
  check_all_hold what (Properties.trb_check ~sender:(pid sender) ~value ~equal:Int.equal r)

let deliveries r =
  List.map (fun (_, p, d) -> (Pid.to_int p, d)) r.Rlfd_sim.Runner.outputs

let spec_tests =
  [
    test "correct sender: everyone delivers the value" (fun () ->
        let r = run_trb (Pattern.failure_free ~n) in
        check_trb "failure-free" r;
        List.iter
          (fun (_, d) -> Alcotest.(check (option int)) "the value" (Some value) d)
          (deliveries r));
    test "sender crashed at time 0: everyone delivers nil" (fun () ->
        let r = run_trb (pattern ~n [ (1, 0) ]) in
        check_trb "dead sender" r;
        Alcotest.(check bool) "some deliveries" true (deliveries r <> []);
        List.iter
          (fun (_, d) -> Alcotest.(check (option int)) "nil" None d)
          (deliveries r));
    test "sender crashes mid-broadcast: uniform outcome" (fun () ->
        let r = run_trb (pattern ~n [ (1, 2) ]) in
        check_trb "mid-broadcast crash" r;
        match deliveries r with
        | [] -> Alcotest.fail "no deliveries"
        | (_, first) :: rest ->
          List.iter
            (fun (_, d) -> Alcotest.(check (option int)) "all equal" first d)
            rest);
    test "non-sender crashes: the value still goes through" (fun () ->
        let r = run_trb (pattern ~n [ (3, 5) ]) in
        check_trb "bystander crash" r;
        List.iter
          (fun (_, d) -> Alcotest.(check (option int)) "the value" (Some value) d)
          (deliveries r));
    test "sender other than p1" (fun () ->
        let r = run_trb ~sender:4 (pattern ~n [ (1, 3) ]) in
        check_trb ~sender:4 "sender p4" r);
    test "heavy crashes around a correct sender" (fun () ->
        let r = run_trb ~sender:5 (pattern ~n [ (1, 4); (2, 8); (3, 12) ]) in
        check_trb ~sender:5 "three crashes" r;
        List.iter
          (fun (_, d) -> Alcotest.(check (option int)) "the value" (Some value) d)
          (deliveries r));
    qtest ~count:30 "TRB spec across the environment"
      QCheck.(pair (arb_pattern ~n ~horizon:100) (int_range 1 n))
      (fun (pattern, sender) ->
        let r = run_trb ~sender pattern in
        Properties.trb_check ~sender:(pid sender) ~value ~equal:Int.equal r
        |> List.for_all (fun (_, res) -> Classes.holds res));
    qtest ~count:20 "TRB spec under random schedules"
      QCheck.(triple (arb_pattern ~n ~horizon:100) (int_range 1 n) small_int)
      (fun (pattern, sender, seed) ->
        let r = run_trb ~scheduler:(`Random seed) ~sender pattern in
        Properties.trb_check ~sender:(pid sender) ~value ~equal:Int.equal r
        |> List.for_all (fun (_, res) -> Classes.holds res));
  ]

let adversarial_tests =
  [
    test "slow sender is waited for, not nil'd (strong accuracy)" (fun () ->
        (* the sender's messages are delayed a long time; with a Perfect
           detector nobody may propose nil for a correct sender *)
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.delay_from (pid 1) ~until:(time 400) ]
        in
        let pattern = Pattern.failure_free ~n in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 8000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Trb.automaton ~sender:(pid 1) ~value)
        in
        check_trb "slow sender" r;
        List.iter
          (fun (_, d) -> Alcotest.(check (option int)) "the value" (Some value) d)
          (deliveries r));
    test "value racing the crash notification" (fun () ->
        (* sender crashes just after sending; its Value messages are delayed
           past the suspicion: mixed Some/None proposals, consensus must
           still produce one uniform outcome *)
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.delay_from (pid 1) ~until:(time 300) ]
        in
        let pattern = pattern ~n [ (1, 2) ] in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 8000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Trb.automaton ~sender:(pid 1) ~value)
        in
        check_trb "race" r);
    test "with a delayed P, slow suspicion only delays the outcome" (fun () ->
        let r =
          run_trb ~detector:(Perfect.delayed ~lag:30) (pattern ~n [ (1, 0) ])
        in
        check_trb "delayed suspicion" r);
  ]

(* state-accessor coverage *)
let state_tests =
  [
    test "delivery accessor reflects the outcome" (fun () ->
        let r = run_trb (Pattern.failure_free ~n) in
        Pid.Map.iter
          (fun p st ->
            if Pid.Set.mem p (Pattern.correct r.Runner.pattern) then
              Alcotest.(check bool)
                (Format.asprintf "%a delivered" Pid.pp p)
                true
                (Trb.delivery st = Some (Some value)))
          r.Runner.final_states);
  ]

let () =
  Alcotest.run "trb"
    [
      suite "specification" spec_tests;
      suite "adversarial" adversarial_tests;
      suite "state" state_tests;
    ]
