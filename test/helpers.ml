(* Shared helpers for the test suites. *)

open Rlfd_kernel
open Rlfd_fd

let pid = Pid.of_int

let time = Time.of_int

let pids = List.map pid

let pattern ~n crashes =
  Pattern.make ~n (List.map (fun (p, t) -> (pid p, time t)) crashes)

let check_holds what result =
  Alcotest.(check bool)
    (Format.asprintf "%s (%a)" what Classes.pp_result result)
    true (Classes.holds result)

let check_violated what result =
  Alcotest.(check bool)
    (Format.asprintf "%s should be violated" what)
    false (Classes.holds result)

let check_all_hold what checks =
  List.iter (fun (name, result) -> check_holds (what ^ ": " ^ name) result) checks

(* A deterministic consensus workload. *)
let proposals p = 1000 + Pid.to_int p

let suite name cases = (name, cases)

let test name f = Alcotest.test_case name `Quick f

let slow_test name f = Alcotest.test_case name `Slow f

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

(* Run a consensus-style automaton to completion. *)
let run_consensus ?(horizon = 6000) ?(scheduler = `Fair) ~detector ~pattern automaton =
  let scheduler =
    match scheduler with
    | `Fair -> Rlfd_sim.Scheduler.fair ()
    | `Random seed -> Rlfd_sim.Scheduler.random ~seed ~lambda_bias:0.3
  in
  Rlfd_sim.Runner.run ~pattern ~detector ~scheduler ~horizon:(time horizon)
    ~until:(Rlfd_sim.Runner.stop_when_all_correct_output pattern)
    automaton

let decision_values r =
  List.map (fun (_, _, v) -> v) r.Rlfd_sim.Runner.outputs

(* Sampled patterns for property tests: a pattern family index and a seed. *)
let arb_pattern ~n ~horizon =
  let open QCheck in
  let families = Pattern.Family.all in
  let gen =
    Gen.map2
      (fun fam_idx seed ->
        let family = List.nth families (fam_idx mod List.length families) in
        let rng = Rng.derive ~seed ~salts:[ 0x7E57 ] in
        Pattern.Family.generate family ~n ~horizon:(time horizon) rng)
      (Gen.int_bound (List.length families - 1))
      (Gen.int_bound 1_000_000)
  in
  make ~print:(Format.asprintf "%a" Pattern.pp) gen
