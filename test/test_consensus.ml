(* EXP-3 / EXP-7 / EXP-9: the consensus algorithm portfolio. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 5

let check_spec ?(uniform = true) what r =
  check_all_hold what
    (Properties.check_consensus ~uniform ~proposals ~equal:Int.equal r)

(* ---------- ct_strong with Perfect detectors ---------- *)

let ct_strong_tests =
  [
    test "failure-free run decides p1's value" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r =
          run_consensus ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        check_spec "failure-free" r;
        List.iter (fun v -> Alcotest.(check int) "p1's proposal" 1001 v)
          (decision_values r));
    test "initial crash of p1 decides someone else's value" (fun () ->
        let pattern = pattern ~n [ (1, 0) ] in
        let r =
          run_consensus ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        check_spec "p1 crashed at 0" r;
        List.iter
          (fun v -> Alcotest.(check bool) "not p1's value" true (v <> 1001))
          (decision_values r));
    test "tolerates n-1 crashes" (fun () ->
        let pattern = pattern ~n [ (1, 5); (2, 12); (3, 19); (4, 26) ] in
        let r =
          run_consensus ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        check_spec "all but p5 crash" r;
        Alcotest.(check bool) "p5 decided" true
          (Runner.first_output r (pid 5) <> None));
    test "simultaneous crash of a majority" (fun () ->
        let pattern = pattern ~n [ (1, 10); (2, 10); (3, 10) ] in
        let r =
          run_consensus ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        check_spec "3 crash at t=10" r);
    test "works with delayed P (slow information)" (fun () ->
        let pattern = pattern ~n [ (2, 8) ] in
        let r =
          run_consensus ~detector:(Perfect.delayed ~lag:20) ~pattern
            (Ct_strong.automaton ~proposals)
        in
        check_spec "delayed P" r);
    test "works with the Scribe" (fun () ->
        let pattern = pattern ~n [ (4, 15) ] in
        let r =
          run_consensus ~detector:Scribe.as_suspicions ~pattern
            (Ct_strong.automaton ~proposals)
        in
        check_spec "scribe" r);
    test "works under the random scheduler" (fun () ->
        let pattern = pattern ~n [ (3, 9) ] in
        let r =
          run_consensus ~scheduler:(`Random 31) ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        check_spec "random schedule" r);
    test "adversarial delays do not break safety or liveness" (fun () ->
        let pattern = pattern ~n [ (2, 6) ] in
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.delay_from (pid 1) ~until:(time 150);
              Scheduler.delay_to (pid 4) ~until:(time 120) ]
        in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 6000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Ct_strong.automaton ~proposals)
        in
        check_spec "delayed links" r);
    qtest ~count:40 "spec holds over the pattern space"
      (arb_pattern ~n ~horizon:150)
      (fun pattern ->
        let r =
          run_consensus ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r
        |> List.for_all (fun (_, res) -> Classes.holds res));
    qtest ~count:25 "spec holds under random schedules"
      QCheck.(pair (arb_pattern ~n ~horizon:150) small_int)
      (fun (pattern, seed) ->
        let r =
          run_consensus ~scheduler:(`Random seed) ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r
        |> List.for_all (fun (_, res) -> Classes.holds res));
    test "decision state is queryable" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r =
          run_consensus ~detector:Perfect.canonical ~pattern
            (Ct_strong.automaton ~proposals)
        in
        Pid.Map.iter
          (fun p st ->
            Alcotest.(check (option int))
              (Format.asprintf "%a decided" Pid.pp p)
              (Some 1001) (Ct_strong.decision st))
          r.Runner.final_states);
  ]

(* ---------- ct_ev_strong (rotating coordinator) ---------- *)

let ev_strong_detector = Ev_strong.canonical ~seed:6 ~noise:0.15

let ct_ev_strong_tests =
  [
    test "failure-free majority run decides" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r =
          run_consensus ~detector:ev_strong_detector ~pattern
            (Ct_ev_strong.automaton ~proposals)
        in
        check_spec "failure-free" r);
    test "minority crash still decides" (fun () ->
        let pattern = pattern ~n [ (1, 10); (4, 25) ] in
        let r =
          run_consensus ~detector:ev_strong_detector ~pattern
            (Ct_ev_strong.automaton ~proposals)
        in
        check_spec "2 of 5 crash" r);
    test "majority crash blocks but stays safe (EXP-9)" (fun () ->
        let pattern = pattern ~n [ (1, 10); (2, 15); (3, 20) ] in
        let r =
          run_consensus ~horizon:2500 ~detector:ev_strong_detector ~pattern
            (Ct_ev_strong.automaton ~proposals)
        in
        check_violated "termination must fail" (Properties.termination r);
        check_holds "agreement intact"
          (Properties.uniform_agreement ~equal:Int.equal r);
        check_holds "validity intact" (Properties.validity ~proposals ~equal:Int.equal r));
    test "works with a Perfect detector too" (fun () ->
        let pattern = pattern ~n [ (2, 12) ] in
        let r =
          run_consensus ~detector:Perfect.canonical ~pattern
            (Ct_ev_strong.automaton ~proposals)
        in
        check_spec "P driving <>S algorithm" r);
    test "majority helper" (fun () ->
        Alcotest.(check int) "n=5" 3 (Ct_ev_strong.majority ~n:5);
        Alcotest.(check int) "n=4" 3 (Ct_ev_strong.majority ~n:4));
    qtest ~count:25 "safe and live with minority crashes" QCheck.small_int (fun seed ->
        let rng = Rng.derive ~seed ~salts:[ 0xE5 ] in
        let pattern =
          Pattern.Family.generate Pattern.Family.minority_crashes ~n
            ~horizon:(time 100) rng
        in
        let r =
          run_consensus ~scheduler:(`Random seed) ~detector:ev_strong_detector ~pattern
            (Ct_ev_strong.automaton ~proposals)
        in
        Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r
        |> List.for_all (fun (_, res) -> Classes.holds res));
    qtest ~count:25 "never unsafe even with majority crashes" QCheck.small_int
      (fun seed ->
        let rng = Rng.derive ~seed ~salts:[ 0xE6 ] in
        let pattern =
          Pattern.Family.generate Pattern.Family.majority_crashes ~n
            ~horizon:(time 100) rng
        in
        let r =
          run_consensus ~horizon:1500 ~detector:ev_strong_detector ~pattern
            (Ct_ev_strong.automaton ~proposals)
        in
        Classes.holds (Properties.uniform_agreement ~equal:Int.equal r)
        && Classes.holds (Properties.validity ~proposals ~equal:Int.equal r));
  ]

(* ---------- Marabout consensus (Section 6.1) ---------- *)

let marabout_tests =
  [
    test "decides with unbounded crashes under M" (fun () ->
        let pattern = pattern ~n [ (1, 3); (2, 6); (3, 9); (4, 12) ] in
        let r =
          run_consensus ~detector:Marabout.canonical ~pattern
            (Marabout_consensus.automaton ~proposals)
        in
        check_spec "all but p5 crash" r;
        (* the leader is the smallest correct process: p5 *)
        List.iter (fun v -> Alcotest.(check int) "p5's value" 1005 v) (decision_values r));
    test "failure-free: p1 leads" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r =
          run_consensus ~detector:Marabout.canonical ~pattern
            (Marabout_consensus.automaton ~proposals)
        in
        check_spec "failure-free" r;
        List.iter (fun v -> Alcotest.(check int) "p1's value" 1001 v) (decision_values r));
    qtest ~count:30 "spec holds across the pattern space with M"
      (arb_pattern ~n ~horizon:100)
      (fun pattern ->
        let r =
          run_consensus ~detector:Marabout.canonical ~pattern
            (Marabout_consensus.automaton ~proposals)
        in
        Properties.check_consensus ~uniform:true ~proposals ~equal:Int.equal r
        |> List.for_all (fun (_, res) -> Classes.holds res));
    test "unsound with a realistic detector (EXP-7b)" (fun () ->
        let p1 = pid 1 in
        let pattern = pattern ~n [ (1, 1) ] in
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.fair ())
            [ Scheduler.delay_from p1 ~until:(time 2000) ]
        in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 6000)
            ~until:(Runner.stop_when_all_correct_output pattern)
            (Marabout_consensus.automaton ~proposals)
        in
        check_violated "uniform agreement must break"
          (Properties.uniform_agreement ~equal:Int.equal r));
  ]

(* ---------- rank consensus is exercised in test_uniformity.ml ---------- *)

let () =
  Alcotest.run "consensus"
    [
      suite "ct-strong" ct_strong_tests;
      suite "ct-rotating-coordinator" ct_ev_strong_tests;
      suite "marabout" marabout_tests;
    ]
