(* Environments (Section 2.1): sets of failure patterns, first-class. *)

open Rlfd_kernel
open Rlfd_fd
open Helpers

let n = 5

let horizon = time 80

let rng seed = Rng.derive ~seed ~salts:[ 0xEE ]

let membership_tests =
  [
    test "unbounded contains everything" (fun () ->
        List.iter
          (fun p -> Alcotest.(check bool) "in" true (Environment.contains Environment.unbounded p))
          [ Pattern.failure_free ~n; pattern ~n [ (1, 0) ];
            pattern ~n [ (1, 0); (2, 1); (3, 2); (4, 3) ] ]);
    test "majority-correct rejects heavy crashes" (fun () ->
        Alcotest.(check bool) "2 of 5 ok" true
          (Environment.contains Environment.majority_correct (pattern ~n [ (1, 0); (2, 1) ]));
        Alcotest.(check bool) "3 of 5 rejected" false
          (Environment.contains Environment.majority_correct
             (pattern ~n [ (1, 0); (2, 1); (3, 2) ])));
    test "f_bounded counts crashes" (fun () ->
        let env = Environment.f_bounded 1 in
        Alcotest.(check bool) "one ok" true (Environment.contains env (pattern ~n [ (1, 0) ]));
        Alcotest.(check bool) "two rejected" false
          (Environment.contains env (pattern ~n [ (1, 0); (2, 0) ])));
    test "failure_free" (fun () ->
        Alcotest.(check bool) "clean ok" true
          (Environment.contains Environment.failure_free (Pattern.failure_free ~n));
        Alcotest.(check bool) "crash rejected" false
          (Environment.contains Environment.failure_free (pattern ~n [ (1, 0) ])));
    test "names" (fun () ->
        Alcotest.(check string) "unbounded" "unbounded" (Environment.name Environment.unbounded);
        Alcotest.(check string) "bounded" "at-most-2-crashes"
          (Environment.name (Environment.f_bounded 2)));
  ]

let sampling_tests =
  [
    qtest ~count:40 "samples stay inside their environment" QCheck.small_int (fun seed ->
        List.for_all
          (fun env ->
            let p = Environment.sample env ~n ~horizon (rng seed) in
            Environment.contains env p)
          [ Environment.unbounded; Environment.majority_correct;
            Environment.f_bounded 1; Environment.failure_free ]);
    qtest ~count:40 "unbounded sampling reaches heavy-crash corners" QCheck.small_int
      (fun seed ->
        (* over 20 samples, at least one pattern with >= n/2 crashes appears
           often enough that seeds rarely miss; accept any single sample *)
        let g = rng seed in
        let samples =
          List.init 20 (fun _ -> Environment.sample Environment.unbounded ~n ~horizon g)
        in
        List.exists (fun p -> Pattern.num_faulty p >= n / 2) samples
        || List.for_all (fun p -> Pattern.num_faulty p < n) samples);
    test "custom environment filters" (fun () ->
        let env =
          Environment.custom ~name:"p1-survives"
            ~contains:(fun p -> Pid.Set.mem (pid 1) (Pattern.correct p))
            ~base:Pattern.Family.all
        in
        let g = rng 4 in
        List.iter
          (fun _ ->
            let p = Environment.sample env ~n ~horizon g in
            Alcotest.(check bool) "p1 correct" true (Pid.Set.mem (pid 1) (Pattern.correct p)))
          (List.init 20 Fun.id));
    test "impossible environment fails loudly" (fun () ->
        let env =
          Environment.custom ~name:"impossible"
            ~contains:(fun _ -> false)
            ~base:[ Pattern.Family.failure_free ]
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Environment.sample env ~n ~horizon (rng 1));
             false
           with Failure _ -> true));
  ]

let () =
  Alcotest.run "environment"
    [ suite "membership" membership_tests; suite "sampling" sampling_tests ]
