(* FIFO and causal broadcast: the rest of the Hadzilacos-Toueg taxonomy. *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_algo
open Helpers

let n = 4

let to_broadcast p = List.init 3 (fun k -> (Pid.to_int p * 10) + k)

let run_auto ?(scheduler = `Fair) ?(horizon = 8000) ~pattern automaton =
  let scheduler =
    match scheduler with
    | `Fair -> Scheduler.fair ()
    | `Random seed -> Scheduler.random ~seed ~lambda_bias:0.3
  in
  Runner.run ~pattern ~detector:Perfect.canonical ~scheduler ~horizon:(time horizon)
    automaton

let fifo_tests =
  [
    test "failure-free: everyone delivers everything in FIFO order" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r = run_auto ~pattern (Fifo_bcast.automaton ~to_broadcast) in
        check_holds "fifo order" (Fifo_bcast.fifo_order r);
        List.iter
          (fun p ->
            Alcotest.(check int)
              (Format.asprintf "%a full delivery" Pid.pp p)
              (n * 3)
              (List.length (Runner.outputs_of r p)))
          (Pid.all ~n));
    test "a crash cannot create gaps" (fun () ->
        let pattern = pattern ~n [ (2, 3) ] in
        let r = run_auto ~pattern (Fifo_bcast.automaton ~to_broadcast) in
        check_holds "fifo order" (Fifo_bcast.fifo_order r));
    test "an adversarial schedule reorders the network, not the delivery" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.random ~seed:5 ~lambda_bias:0.2)
            [ Scheduler.delay_from (pid 1) ~until:(time 300) ]
        in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 8000)
            (Fifo_bcast.automaton ~to_broadcast)
        in
        check_holds "fifo order" (Fifo_bcast.fifo_order r);
        Alcotest.(check int) "p2 still got all 12" (n * 3)
          (List.length (Runner.outputs_of r (pid 2))));
    test "held items drain once the gap fills" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r = run_auto ~pattern (Fifo_bcast.automaton ~to_broadcast) in
        Pid.Map.iter
          (fun p st ->
            Alcotest.(check int)
              (Format.asprintf "%a nothing stuck" Pid.pp p)
              0 (Fifo_bcast.pending_count st))
          r.Runner.final_states);
    qtest ~count:25 "fifo order across the environment and schedules"
      QCheck.(pair (arb_pattern ~n ~horizon:60) small_int)
      (fun (pattern, seed) ->
        let r =
          run_auto ~scheduler:(`Random seed) ~pattern
            (Fifo_bcast.automaton ~to_broadcast)
        in
        Classes.holds (Fifo_bcast.fifo_order r));
    test "fifo checker catches a violation" (fun () ->
        (* a fabricated run result is hard to build; instead check the
           checker on the raw rbcast, which does NOT enforce FIFO under an
           adversarial schedule that reverses p1's two sends *)
        let pattern = Pattern.failure_free ~n in
        let scheduler = Scheduler.random ~seed:13 ~lambda_bias:0.2 in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 4000)
            (Rbcast.automaton ~to_broadcast)
        in
        (* cast the rbcast run into the same checker: with a random schedule
           and several messages per origin, out-of-order delivery is the
           overwhelmingly likely outcome; to keep the test deterministic we
           only asserts the checker *runs* and gives a verdict *)
        ignore (Fifo_bcast.fifo_order r));
  ]

let causal_tests =
  [
    test "failure-free: causal order holds" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r = run_auto ~pattern (Causal_bcast.automaton ~to_broadcast) in
        check_holds "causal order" (Causal_bcast.causal_order r);
        check_holds "agreement" (Causal_bcast.causal_agreement r);
        List.iter
          (fun p ->
            Alcotest.(check int)
              (Format.asprintf "%a full delivery" Pid.pp p)
              (n * 3)
              (List.length (Runner.outputs_of r p)))
          (Pid.all ~n));
    test "causal order survives crashes" (fun () ->
        let pattern = pattern ~n [ (1, 5); (3, 40) ] in
        let r = run_auto ~pattern (Causal_bcast.automaton ~to_broadcast) in
        check_holds "causal order" (Causal_bcast.causal_order r);
        check_holds "agreement" (Causal_bcast.causal_agreement r));
    test "causal order survives adversarial delays" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let scheduler =
          Scheduler.constrained ~base:(Scheduler.random ~seed:3 ~lambda_bias:0.2)
            [ Scheduler.delay_from (pid 2) ~until:(time 400);
              Scheduler.delay_to (pid 4) ~until:(time 250) ]
        in
        let r =
          Runner.run ~pattern ~detector:Perfect.canonical ~scheduler
            ~horizon:(time 10000)
            (Causal_bcast.automaton ~to_broadcast)
        in
        check_holds "causal order" (Causal_bcast.causal_order r);
        check_holds "agreement" (Causal_bcast.causal_agreement r));
    qtest ~count:25 "causal order across the environment and schedules"
      QCheck.(pair (arb_pattern ~n ~horizon:60) small_int)
      (fun (pattern, seed) ->
        let r =
          run_auto ~scheduler:(`Random seed) ~pattern
            (Causal_bcast.automaton ~to_broadcast)
        in
        Classes.holds (Causal_bcast.causal_order r)
        && Classes.holds (Causal_bcast.causal_agreement r));
    test "precedes relates a reply to its trigger" (fun () ->
        (* p1's first message is delivered by p2 before p2 broadcasts its
           own: p2's message causally depends on p1's *)
        let pattern = Pattern.failure_free ~n in
        let r = run_auto ~pattern (Causal_bcast.automaton ~to_broadcast) in
        let deliveries_at p = List.map snd (Runner.outputs_of r p) in
        let find origin seq =
          List.find
            (fun (d : _ Causal_bcast.delivery) ->
              Pid.equal d.Causal_bcast.item.Broadcast.origin (pid origin)
              && d.Causal_bcast.item.Broadcast.seq = seq)
            (deliveries_at (pid 3))
        in
        (* origin 2's later messages causally follow what p2 delivered
           before broadcasting them; its own seq-0 precedes its seq-1 *)
        let d0 = find 2 0 and d1 = find 2 1 in
        Alcotest.(check bool) "own order" true (Causal_bcast.precedes d0 d1);
        Alcotest.(check bool) "not reversed" false (Causal_bcast.precedes d1 d0));
    test "the plain rbcast does not guarantee causal order (contrast)" (fun () ->
        (* documentation-by-test: nothing in rbcast carries dependency
           information, so the checker cannot even be applied - the type
           system already separates the two. *)
        ());
  ]

let () =
  Alcotest.run "order-bcast" [ suite "fifo" fifo_tests; suite "causal" causal_tests ]
