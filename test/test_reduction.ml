(* EXP-2 / EXP-4b: the T(D->P) transformation (Lemma 4.2) and the TRB-based
   emulation (Proposition 5.1). *)

open Rlfd_kernel
open Rlfd_fd
open Rlfd_sim
open Rlfd_reduction
open Helpers

let n = 4

let horizon = time 5000

let run_reduction ?(scheduler = `Fair) ~detector ~pattern impl =
  let scheduler =
    match scheduler with
    | `Fair -> Scheduler.fair ()
    | `Random seed -> Scheduler.random ~seed ~lambda_bias:0.3
  in
  Runner.run ~pattern ~detector ~scheduler ~horizon
    (Consensus_to_p.automaton ~impl)

let emulation_all_hold what r = check_all_hold what (Emulation.check_emulation_run r)

let consensus_to_p_tests =
  [
    test "failure-free: nobody ever suspected" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r = run_reduction ~detector:Perfect.canonical ~pattern Consensus_to_p.ct_strong_impl in
        emulation_all_hold "failure-free" r;
        Alcotest.(check int) "no suspicion output changes" 0
          (List.length
             (List.filter (fun (_, _, s) -> not (Pid.Set.is_empty s)) r.Runner.outputs));
        (* many instances must have completed *)
        Pid.Map.iter
          (fun p st ->
            Alcotest.(check bool)
              (Format.asprintf "%a ran instances" Pid.pp p)
              true
              (Consensus_to_p.instances_decided st > 5))
          r.Runner.final_states);
    test "single crash: emulated P catches it" (fun () ->
        let pattern = pattern ~n [ (2, 60) ] in
        let r = run_reduction ~detector:Perfect.canonical ~pattern Consensus_to_p.ct_strong_impl in
        emulation_all_hold "single crash" r;
        Pid.Map.iter
          (fun p st ->
            if Pattern.is_alive pattern p (time 100000) then
              Alcotest.(check string)
                (Format.asprintf "output(P) at %a" Pid.pp p)
                "{p2}"
                (Format.asprintf "%a" Pid.Set.pp (Consensus_to_p.output_p st)))
          r.Runner.final_states);
    test "three crashes: all eventually suspected" (fun () ->
        let pattern = pattern ~n [ (1, 40); (2, 80); (3, 120) ] in
        let r = run_reduction ~detector:Perfect.canonical ~pattern Consensus_to_p.ct_strong_impl in
        emulation_all_hold "three crashes" r);
    test "crash at time 0" (fun () ->
        let pattern = pattern ~n [ (3, 0) ] in
        let r = run_reduction ~detector:Perfect.canonical ~pattern Consensus_to_p.ct_strong_impl in
        emulation_all_hold "crash at 0" r);
    test "works from a realistic Strong detector" (fun () ->
        let pattern = pattern ~n [ (4, 70) ] in
        let r = run_reduction ~detector:Strong.realistic ~pattern Consensus_to_p.ct_strong_impl in
        emulation_all_hold "from S-realistic" r);
    test "works from the Scribe" (fun () ->
        let pattern = pattern ~n [ (1, 50) ] in
        let r = run_reduction ~detector:Scribe.as_suspicions ~pattern Consensus_to_p.ct_strong_impl in
        emulation_all_hold "from Scribe" r);
    test "works from a delayed P" (fun () ->
        let pattern = pattern ~n [ (2, 50) ] in
        let r =
          run_reduction ~detector:(Perfect.delayed ~lag:10) ~pattern
            Consensus_to_p.ct_strong_impl
        in
        emulation_all_hold "from delayed P" r);
    qtest ~count:20 "emulation holds over the sampled environment"
      (arb_pattern ~n ~horizon:120)
      (fun pattern ->
        let r = run_reduction ~detector:Perfect.canonical ~pattern Consensus_to_p.ct_strong_impl in
        Emulation.check_emulation_run r |> List.for_all (fun (_, res) -> Classes.holds res));
    qtest ~count:12 "emulation holds under random schedules"
      QCheck.(pair (arb_pattern ~n ~horizon:120) small_int)
      (fun (pattern, seed) ->
        let r =
          run_reduction ~scheduler:(`Random seed) ~detector:Perfect.canonical ~pattern
            Consensus_to_p.ct_strong_impl
        in
        Emulation.check_emulation_run r |> List.for_all (fun (_, res) -> Classes.holds res));
    test "output(P) is monotone at every process" (fun () ->
        let pattern = pattern ~n [ (1, 30); (4, 90) ] in
        let r = run_reduction ~detector:Perfect.canonical ~pattern Consensus_to_p.ct_strong_impl in
        check_holds "monotone" (Emulation.monotone r));
  ]

let negative_tests =
  [
    test "non-total algorithm breaks the emulated accuracy (EXP-2b)" (fun () ->
        let pattern = Pattern.failure_free ~n in
        let r =
          run_reduction ~detector:Partial_perfect.canonical ~pattern
            Consensus_to_p.rank_impl
        in
        let checks = Emulation.check_emulation_run r in
        check_violated "strong accuracy"
          (List.assoc "strong accuracy" checks));
    test "Marabout-based reduction also breaks accuracy" (fun () ->
        (* the Marabout algorithm consults only the leader, so everyone else
           is falsely added to output(P) at each decision *)
        let pattern = Pattern.failure_free ~n in
        let r =
          run_reduction ~detector:Marabout.canonical ~pattern Consensus_to_p.marabout_impl
        in
        let checks = Emulation.check_emulation_run r in
        check_violated "strong accuracy" (List.assoc "strong accuracy" checks));
  ]

(* ---------- TRB -> P ---------- *)

let run_trb_reduction ?(detector = Perfect.canonical) pattern =
  Runner.run ~pattern ~detector ~scheduler:(Scheduler.fair ()) ~horizon
    Trb_to_p.automaton

let trb_to_p_tests =
  [
    test "sender rotation is round-robin" (fun () ->
        Alcotest.(check (list int)) "senders" [ 1; 2; 3; 4; 1 ]
          (List.map
             (fun k -> Pid.to_int (Trb_to_p.sender_of_instance ~n k))
             [ 1; 2; 3; 4; 5 ]));
    test "failure-free: no nil, no suspicion" (fun () ->
        let r = run_trb_reduction (Pattern.failure_free ~n) in
        Alcotest.(check int) "no outputs" 0 (List.length r.Runner.outputs);
        Pid.Map.iter
          (fun p st ->
            Alcotest.(check bool)
              (Format.asprintf "%a empty" Pid.pp p)
              true
              (Pid.Set.is_empty (Trb_to_p.output_p st));
            Alcotest.(check bool)
              (Format.asprintf "%a progressed" Pid.pp p)
              true
              (Trb_to_p.instances_done st > 4))
          r.Runner.final_states);
    test "crashed process gets suspected via nil deliveries" (fun () ->
        let pattern = pattern ~n [ (2, 50) ] in
        let r = run_trb_reduction pattern in
        emulation_all_hold "crash of p2" r);
    test "multiple crashes" (fun () ->
        let pattern = pattern ~n [ (1, 30); (3, 70) ] in
        let r = run_trb_reduction pattern in
        emulation_all_hold "two crashes" r);
    qtest ~count:15 "emulation holds over the sampled environment"
      (arb_pattern ~n ~horizon:100)
      (fun pattern ->
        let r = run_trb_reduction pattern in
        Emulation.check_emulation_run r |> List.for_all (fun (_, res) -> Classes.holds res));
  ]

(* ---------- recorded history machinery ---------- *)

let machinery_tests =
  [
    test "recorded_history replays the records" (fun () ->
        let h =
          Emulation.recorded_history ~n
            [ (time 5, pid 1, Pid.Set.of_ints [ 2 ]);
              (time 9, pid 1, Pid.Set.of_ints [ 2; 3 ]) ]
        in
        Alcotest.(check string) "before" "{}" (Format.asprintf "%a" Pid.Set.pp (h (pid 1) (time 2)));
        Alcotest.(check string) "mid" "{p2}" (Format.asprintf "%a" Pid.Set.pp (h (pid 1) (time 7)));
        Alcotest.(check string) "after" "{p2,p3}"
          (Format.asprintf "%a" Pid.Set.pp (h (pid 1) (time 50))));
    test "check_perfect flags a fabricated bad history" (fun () ->
        let f = pattern ~n [ (2, 50) ] in
        (* history suspects p1 (alive forever): accuracy must fail *)
        let h = History.of_fun (fun _ _ -> Pid.Set.of_ints [ 1 ]) in
        let checks =
          Emulation.check_perfect ~pattern:f ~horizon:(time 100) h
        in
        check_violated "strong accuracy" (List.assoc "strong accuracy" checks));
  ]

(* ---------- the CT96 weak-to-strong completeness transformation ---------- *)

let weak_to_strong_tests =
  let run_transform ?(gossip_every = 3) ~detector pattern =
    Runner.run ~pattern ~detector ~scheduler:(Scheduler.fair ()) ~horizon:(time 2000)
      (Weak_to_strong.automaton ~gossip_every)
  in
  let emulated_history r = Emulation.of_run r in
  let window_checks r =
    let horizon = r.Runner.end_time in
    let window = Classes.default_window ~horizon in
    (horizon, window)
  in
  [
    test "the raw weakly-complete detector fails strong completeness" (fun () ->
        let f = pattern ~n [ (2, 50) ] in
        let horizon = time 500 in
        check_violated "raw detector"
          (Classes.strong_completeness f ~horizon
             ~window:(Classes.default_window ~horizon)
             (Detector.history Ev_strong.weakly_complete f)));
    test "the transformation restores strong completeness" (fun () ->
        let f = pattern ~n [ (2, 50) ] in
        let r = run_transform ~detector:Ev_strong.weakly_complete f in
        let horizon, window = window_checks r in
        check_holds "strong completeness"
          (Classes.strong_completeness f ~horizon ~window (emulated_history r));
        check_holds "strong accuracy preserved"
          (Classes.strong_accuracy f ~horizon ~window (emulated_history r)));
    test "multiple crashes, including the roving observer" (fun () ->
        (* crash low-index processes so the observer role moves *)
        let f = pattern ~n [ (1, 40); (2, 80) ] in
        let r = run_transform ~detector:Ev_strong.weakly_complete f in
        let horizon, window = window_checks r in
        check_holds "strong completeness"
          (Classes.strong_completeness f ~horizon ~window (emulated_history r)));
    test "feeding a fully Perfect detector changes nothing" (fun () ->
        let f = pattern ~n [ (3, 60) ] in
        let r = run_transform ~detector:Perfect.canonical f in
        let horizon, window = window_checks r in
        check_holds "still Perfect-grade: completeness"
          (Classes.strong_completeness f ~horizon ~window (emulated_history r));
        check_holds "still Perfect-grade: accuracy"
          (Classes.strong_accuracy f ~horizon ~window (emulated_history r)));
    qtest ~count:15 "transformation works across the environment"
      (arb_pattern ~n ~horizon:80)
      (fun f ->
        let r = run_transform ~detector:Ev_strong.weakly_complete f in
        let horizon = r.Runner.end_time in
        let window = Classes.default_window ~horizon in
        Classes.holds
          (Classes.strong_completeness f ~horizon ~window (emulated_history r))
        && Classes.holds
             (Classes.strong_accuracy f ~horizon ~window (emulated_history r)));
    test "gossip_every is validated" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Weak_to_strong.automaton: gossip_every must be >= 1")
          (fun () -> ignore (Weak_to_strong.automaton ~gossip_every:0)));
  ]

let () =
  Alcotest.run "reduction"
    [
      suite "consensus-to-P" consensus_to_p_tests;
      suite "needs-totality" negative_tests;
      suite "trb-to-P" trb_to_p_tests;
      suite "machinery" machinery_tests;
      suite "weak-to-strong" weak_to_strong_tests;
    ]
